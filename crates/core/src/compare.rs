//! Golden-vs-observed output comparison.
//!
//! Mirrors the experimental procedure of §IV-D: a host gathers results and
//! compares them with a pre-computed golden output; any differing element
//! becomes a [`Mismatch`] in the resulting [`ErrorReport`].

use crate::dirty::DirtyRegion;
use crate::error::CoreError;
use crate::exec;
use crate::mismatch::Mismatch;
use crate::report::ErrorReport;
use crate::shape::OutputShape;

/// Compares an observed output against the golden output element by
/// element and collects every exact mismatch.
///
/// Bitwise-equal elements (including equal NaN payload semantics: two NaNs
/// are treated as matching, since the golden run produced a NaN there too)
/// are considered correct; everything else becomes a [`Mismatch`].
///
/// # Errors
///
/// Returns [`CoreError::LengthMismatch`] when the two slices have different
/// lengths and [`CoreError::ShapeMismatch`] when their length does not
/// match `shape`.
///
/// # Examples
///
/// ```
/// use radcrit_core::{compare::compare_slices, shape::OutputShape};
///
/// let golden = [1.0, 2.0, 3.0, 4.0];
/// let observed = [1.0, 2.5, 3.0, 4.0];
/// let report = compare_slices(&golden, &observed, OutputShape::d2(2, 2))?;
/// assert_eq!(report.incorrect_elements(), 1);
/// assert_eq!(report.mismatches()[0].coord(), [0, 1, 0]);
/// # Ok::<(), radcrit_core::CoreError>(())
/// ```
pub fn compare_slices(
    golden: &[f64],
    observed: &[f64],
    shape: OutputShape,
) -> Result<ErrorReport, CoreError> {
    validate(golden.len(), observed.len(), shape)?;
    let mut mismatches = Vec::new();
    collect_range(golden, observed, shape, 0, &mut mismatches);
    Ok(ErrorReport::new(shape, mismatches))
}

/// Single-precision variant of [`compare_slices`], used for kernels that
/// work over `f32` data (HotSpot in the paper uses single precision).
///
/// Values are widened to `f64` for relative-error computation, which is
/// exact for every `f32`.
///
/// # Errors
///
/// Same conditions as [`compare_slices`].
pub fn compare_slices_f32(
    golden: &[f32],
    observed: &[f32],
    shape: OutputShape,
) -> Result<ErrorReport, CoreError> {
    validate(golden.len(), observed.len(), shape)?;
    let mut mismatches = Vec::new();
    collect_range_f32(golden, observed, shape, 0, &mut mismatches);
    Ok(ErrorReport::new(shape, mismatches))
}

/// Sparse variant of [`compare_slices`] for differential execution:
/// only elements inside `dirty` are compared. Elements outside the
/// region are guaranteed byte-identical by the resume invariant (they
/// are the golden prefix the run never re-executed), so the resulting
/// [`ErrorReport`] is identical to a full comparison — at O(touched)
/// instead of O(output) cost.
///
/// # Errors
///
/// Same conditions as [`compare_slices`].
pub fn compare_slices_sparse(
    golden: &[f64],
    observed: &[f64],
    shape: OutputShape,
    dirty: &DirtyRegion,
) -> Result<ErrorReport, CoreError> {
    validate(golden.len(), observed.len(), shape)?;
    let mut mismatches = Vec::new();
    for &(start, end) in dirty.ranges() {
        let end = end.min(golden.len());
        if start >= end {
            continue;
        }
        collect_range(
            &golden[start..end],
            &observed[start..end],
            shape,
            start,
            &mut mismatches,
        );
    }
    Ok(ErrorReport::new(shape, mismatches))
}

fn validate(golden: usize, observed: usize, shape: OutputShape) -> Result<(), CoreError> {
    if golden != observed {
        return Err(CoreError::LengthMismatch { golden, observed });
    }
    shape.check_len(golden)?;
    Ok(())
}

/// The mismatch-collection loops all comparison entry points share:
/// a SIMD-dispatched scan ([`exec::next_mismatch_f64`]) skips matching
/// runs; each mismatching pair becomes a [`Mismatch`] at the flat
/// index `offset + i`. The match rule — equal values match, and a NaN
/// matches a NaN (the golden execution legitimately produced an
/// invalid value there) — lives in `exec` so every ISA shares it.
fn collect_range(
    golden: &[f64],
    observed: &[f64],
    shape: OutputShape,
    offset: usize,
    mismatches: &mut Vec<Mismatch>,
) {
    let mut i = 0;
    while let Some(j) = exec::next_mismatch_f64(golden, observed, i) {
        mismatches.push(Mismatch::new(
            shape.coord_of(offset + j),
            observed[j],
            golden[j],
        ));
        i = j + 1;
    }
}

/// Single-precision [`collect_range`]: the scan compares native `f32`
/// (widening to `f64` is exact, so the outcome is identical) and only
/// mismatching elements are widened for the report.
fn collect_range_f32(
    golden: &[f32],
    observed: &[f32],
    shape: OutputShape,
    offset: usize,
    mismatches: &mut Vec<Mismatch>,
) {
    let mut i = 0;
    while let Some(j) = exec::next_mismatch_f32(golden, observed, i) {
        mismatches.push(Mismatch::new(
            shape.coord_of(offset + j),
            f64::from(observed[j]),
            f64::from(golden[j]),
        ));
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_outputs_produce_empty_report() {
        let data = [1.0, 2.0, 3.0];
        let report = compare_slices(&data, &data, OutputShape::d1(3)).unwrap();
        assert_eq!(report.incorrect_elements(), 0);
        assert!(!report.is_sdc());
    }

    #[test]
    fn every_mismatch_located() {
        let golden = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let observed = [0.0, 9.0, 2.0, 3.0, 8.0, 5.0];
        let report = compare_slices(&golden, &observed, OutputShape::d2(2, 3)).unwrap();
        assert_eq!(report.incorrect_elements(), 2);
        assert_eq!(report.mismatches()[0].coord(), [0, 1, 0]);
        assert_eq!(report.mismatches()[1].coord(), [1, 1, 0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = compare_slices(&[1.0], &[1.0, 2.0], OutputShape::d1(1)).unwrap_err();
        assert_eq!(
            err,
            CoreError::LengthMismatch {
                golden: 1,
                observed: 2
            }
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let err = compare_slices(&[1.0, 2.0], &[1.0, 2.0], OutputShape::d1(3)).unwrap_err();
        assert_eq!(
            err,
            CoreError::ShapeMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn nan_in_both_matches() {
        let golden = [f64::NAN, 1.0];
        let observed = [f64::NAN, 1.0];
        let report = compare_slices(&golden, &observed, OutputShape::d1(2)).unwrap();
        assert_eq!(report.incorrect_elements(), 0);
    }

    #[test]
    fn nan_in_observed_only_is_a_mismatch() {
        let golden = [2.0, 1.0];
        let observed = [f64::NAN, 1.0];
        let report = compare_slices(&golden, &observed, OutputShape::d1(2)).unwrap();
        assert_eq!(report.incorrect_elements(), 1);
        assert!(report.mismatches()[0].relative_error().is_infinite());
    }

    #[test]
    fn f32_comparison_widens_exactly() {
        let golden = [1.0f32, 0.1f32];
        let mut observed = golden;
        observed[1] = 0.2f32;
        let report = compare_slices_f32(&golden, &observed, OutputShape::d1(2)).unwrap();
        assert_eq!(report.incorrect_elements(), 1);
        let re = report.mismatches()[0].relative_error();
        assert!((re - 100.0).abs() < 1e-4, "0.1 -> 0.2 is ~100 %, got {re}");
    }

    #[test]
    fn sparse_compare_matches_full_compare_on_covering_region() {
        let golden = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let observed = [0.0, 9.0, 2.0, 3.0, 8.0, 5.0];
        let shape = OutputShape::d2(2, 3);
        let full = compare_slices(&golden, &observed, shape).unwrap();
        let dirty = DirtyRegion::from_spans(vec![(0, 6)], 6);
        let sparse = compare_slices_sparse(&golden, &observed, shape, &dirty).unwrap();
        assert_eq!(full.mismatches(), sparse.mismatches());
    }

    #[test]
    fn sparse_compare_skips_elements_outside_the_region() {
        let golden = [0.0, 1.0, 2.0, 3.0];
        let observed = [9.0, 1.0, 2.0, 7.0];
        let shape = OutputShape::d1(4);
        let dirty = DirtyRegion::from_spans(vec![(3, 1)], 4);
        let report = compare_slices_sparse(&golden, &observed, shape, &dirty).unwrap();
        assert_eq!(report.incorrect_elements(), 1);
        assert_eq!(report.mismatches()[0].coord(), [3, 0, 0]);
    }

    #[test]
    fn sparse_compare_validates_lengths() {
        let dirty = DirtyRegion::from_spans(vec![(0, 1)], 1);
        let err =
            compare_slices_sparse(&[1.0], &[1.0, 2.0], OutputShape::d1(1), &dirty).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    proptest! {
        #[test]
        fn sparse_equals_full_when_region_covers_all_flips(
            golden in proptest::collection::vec(-1e6f64..1e6, 1..64),
            flips in proptest::collection::vec(any::<bool>(), 1..64)) {
            let n = golden.len().min(flips.len());
            let golden = &golden[..n];
            let observed: Vec<f64> = golden.iter().zip(&flips[..n])
                .map(|(&g, &f)| if f { g + 1.0 } else { g })
                .collect();
            let spans: Vec<(usize, usize)> = flips[..n]
                .iter()
                .enumerate()
                .filter(|(_, &f)| f)
                .map(|(i, _)| (i, 1))
                .collect();
            let shape = OutputShape::d1(n);
            let dirty = DirtyRegion::from_spans(spans, n);
            let full = compare_slices(golden, &observed, shape).unwrap();
            let sparse = compare_slices_sparse(golden, &observed, shape, &dirty).unwrap();
            prop_assert_eq!(full.mismatches(), sparse.mismatches());
        }

        #[test]
        fn mismatch_count_equals_differing_positions(
            golden in proptest::collection::vec(-1e6f64..1e6, 1..64),
            flips in proptest::collection::vec(any::<bool>(), 1..64)) {
            let n = golden.len().min(flips.len());
            let golden = &golden[..n];
            let observed: Vec<f64> = golden.iter().zip(&flips[..n])
                .map(|(&g, &f)| if f { g + 1.0 } else { g })
                .collect();
            let expected = flips[..n].iter().filter(|&&f| f).count();
            let report = compare_slices(golden, &observed, OutputShape::d1(n)).unwrap();
            prop_assert_eq!(report.incorrect_elements(), expected);
        }

        #[test]
        fn comparison_is_symmetric_in_count(
            a in proptest::collection::vec(-1e6f64..1e6, 1..32),
            b in proptest::collection::vec(-1e6f64..1e6, 1..32)) {
            let n = a.len().min(b.len());
            let shape = OutputShape::d1(n);
            let fwd = compare_slices(&a[..n], &b[..n], shape).unwrap();
            let rev = compare_slices(&b[..n], &a[..n], shape).unwrap();
            prop_assert_eq!(fwd.incorrect_elements(), rev.incorrect_elements());
        }
    }
}
