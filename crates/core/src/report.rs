//! Per-execution error reports and combined criticality summaries.

use serde::{Deserialize, Serialize};

use crate::filter::ToleranceFilter;
use crate::locality::{LocalityClassifier, SpatialClass};
use crate::mismatch::Mismatch;
use crate::shape::OutputShape;

/// All mismatches observed in one faulty execution, together with the
/// output geometry they live in.
///
/// This is the unit the paper's metrics operate on: one impinging neutron →
/// one execution → one `ErrorReport` (§IV-D tunes the beam so that at most
/// one neutron generates a failure per execution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReport {
    shape: OutputShape,
    mismatches: Vec<Mismatch>,
}

impl ErrorReport {
    /// Creates a report from an explicit mismatch list.
    ///
    /// Library users normally obtain reports from
    /// [`compare_slices`](crate::compare::compare_slices) instead.
    pub fn new(shape: OutputShape, mismatches: Vec<Mismatch>) -> Self {
        ErrorReport { shape, mismatches }
    }

    /// The geometry of the output the mismatches were found in.
    pub fn shape(&self) -> OutputShape {
        self.shape
    }

    /// The mismatches, in ascending linear-index order when produced by
    /// [`compare_slices`](crate::compare::compare_slices).
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }

    /// Metric 1 of the paper: the **number of incorrect elements**.
    pub fn incorrect_elements(&self) -> usize {
        self.mismatches.len()
    }

    /// Whether this execution counts as a Silent Data Corruption (at least
    /// one mismatching element).
    pub fn is_sdc(&self) -> bool {
        !self.mismatches.is_empty()
    }

    /// Metric 3 of the paper: the **mean relative error**, i.e. the average
    /// of the relative errors of all corrupted elements, in percent.
    ///
    /// Returns `None` for a report with no mismatches (the mean of an empty
    /// set is undefined). Infinite per-element errors (corruption of a
    /// zero-expected element or NaN reads) make the mean infinite.
    pub fn mean_relative_error(&self) -> Option<f64> {
        if self.mismatches.is_empty() {
            return None;
        }
        let sum: f64 = self.mismatches.iter().map(Mismatch::relative_error).sum();
        Some(sum / self.mismatches.len() as f64)
    }

    /// Mean relative error with every per-element error saturated at `cap`
    /// percent, reproducing the plotting rule of Figs. 2 and 4.
    ///
    /// Returns `None` for a report with no mismatches.
    pub fn mean_relative_error_capped(&self, cap: f64) -> Option<f64> {
        if self.mismatches.is_empty() {
            return None;
        }
        let sum: f64 = self
            .mismatches
            .iter()
            .map(|m| m.relative_error_capped(cap))
            .sum();
        Some(sum / self.mismatches.len() as f64)
    }

    /// The maximum per-element relative error, or `None` when empty.
    pub fn max_relative_error(&self) -> Option<f64> {
        self.mismatches
            .iter()
            .map(Mismatch::relative_error)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The fraction of output elements corrupted, in `[0, 1]`.
    pub fn corrupted_fraction(&self) -> f64 {
        self.mismatches.len() as f64 / self.shape.len() as f64
    }

    /// Renders a 2-D occupancy map of the corrupted elements, the textual
    /// analogue of the paper's Fig. 9 (CLAMR error-locality map).
    ///
    /// The output geometry is down-sampled onto a `rows × cols` character
    /// grid; cells containing at least one mismatch print `marker`, others
    /// print `'.'`. Rank-3 outputs are projected along the last axis.
    pub fn render_map(&self, rows: usize, cols: usize, marker: char) -> String {
        let dims = self.shape.dims();
        let rows = rows.max(1);
        let cols = cols.max(1);
        let mut grid = vec![vec!['.'; cols]; rows];
        for m in &self.mismatches {
            let c = m.coord();
            let r = c[0] * rows / dims[0];
            let k = if self.shape.rank() >= 2 {
                c[1] * cols / dims[1]
            } else {
                0
            };
            grid[r.min(rows - 1)][k.min(cols - 1)] = marker;
        }
        let mut out = String::with_capacity(rows * (cols + 1));
        for row in grid {
            out.extend(row);
            out.push('\n');
        }
        out
    }

    /// Evaluates all four metrics at once, applying `filter` before the
    /// spatial classification exactly as §III prescribes ("the spatial
    /// locality can be deeply affected by the relative error \[filter\]").
    pub fn criticality(
        &self,
        filter: &ToleranceFilter,
        classifier: &LocalityClassifier,
    ) -> CriticalityReport {
        let filtered = filter.apply(self);
        CriticalityReport {
            incorrect_elements: self.incorrect_elements(),
            mean_relative_error: self.mean_relative_error(),
            locality: classifier.classify(self),
            filtered_incorrect_elements: filtered.incorrect_elements(),
            filtered_mean_relative_error: filtered.mean_relative_error(),
            filtered_locality: classifier.classify(&filtered),
            threshold_pct: filter.threshold_pct(),
        }
    }
}

/// The four metrics of §III evaluated over one faulty execution, both raw
/// ("All" in Figs. 3/5/7) and after the tolerance filter ("> 2 %").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// Metric 1: number of incorrect elements before filtering.
    pub incorrect_elements: usize,
    /// Metric 3: mean relative error (percent) before filtering.
    pub mean_relative_error: Option<f64>,
    /// Metric 4: spatial locality before filtering.
    pub locality: SpatialClass,
    /// Number of incorrect elements surviving the tolerance filter.
    pub filtered_incorrect_elements: usize,
    /// Mean relative error (percent) of the surviving mismatches.
    pub filtered_mean_relative_error: Option<f64>,
    /// Spatial locality of the surviving mismatches (an execution
    /// classified square may become line or single after filtering, §V-A).
    pub filtered_locality: SpatialClass,
    /// The tolerance threshold applied, in percent.
    pub threshold_pct: f64,
}

impl CriticalityReport {
    /// Whether the execution still counts as an SDC after filtering, i.e.
    /// whether at least one mismatch exceeds the tolerance. Executions for
    /// which this is `false` are removed from the "> 2 %" FIT break-downs.
    pub fn is_critical(&self) -> bool {
        self.filtered_incorrect_elements > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_slices;
    use proptest::prelude::*;

    fn report_from(golden: &[f64], observed: &[f64], shape: OutputShape) -> ErrorReport {
        compare_slices(golden, observed, shape).unwrap()
    }

    #[test]
    fn empty_report_has_no_mean() {
        let r = ErrorReport::new(OutputShape::d1(4), vec![]);
        assert_eq!(r.mean_relative_error(), None);
        assert_eq!(r.max_relative_error(), None);
        assert!(!r.is_sdc());
    }

    #[test]
    fn mean_relative_error_averages() {
        let golden = [1.0, 1.0, 1.0];
        let observed = [1.1, 1.3, 1.0]; // 10 % and 30 %
        let r = report_from(&golden, &observed, OutputShape::d1(3));
        let mre = r.mean_relative_error().unwrap();
        assert!((mre - 20.0).abs() < 1e-9, "got {mre}");
        assert!((r.max_relative_error().unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn capped_mean_is_bounded() {
        let golden = [1.0, 1.0];
        let observed = [100.0, 1.05]; // 9900 % and 5 %
        let r = report_from(&golden, &observed, OutputShape::d1(2));
        let capped = r.mean_relative_error_capped(100.0).unwrap();
        assert!((capped - 52.5).abs() < 1e-9, "got {capped}");
    }

    #[test]
    fn corrupted_fraction() {
        let golden = vec![1.0; 10];
        let mut observed = golden.clone();
        observed[3] = 2.0;
        let r = report_from(&golden, &observed, OutputShape::d1(10));
        assert!((r.corrupted_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_map_marks_corruption() {
        let shape = OutputShape::d2(4, 4);
        let golden = vec![1.0; 16];
        let mut observed = golden.clone();
        observed[0] = 2.0; // top-left
        observed[15] = 2.0; // bottom-right
        let r = report_from(&golden, &observed, shape);
        let map = r.render_map(4, 4, '#');
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(&lines[0][0..1], "#");
        assert_eq!(&lines[3][3..4], "#");
        assert_eq!(map.matches('#').count(), 2);
    }

    #[test]
    fn criticality_combines_filtered_and_raw() {
        let shape = OutputShape::d1(4);
        let golden = vec![1.0; 4];
        let observed = vec![1.5, 1.001, 1.0, 1.0]; // 50 % and 0.1 %
        let r = report_from(&golden, &observed, shape);
        let c = r.criticality(
            &ToleranceFilter::paper_default(),
            &LocalityClassifier::default(),
        );
        assert_eq!(c.incorrect_elements, 2);
        assert_eq!(c.filtered_incorrect_elements, 1);
        assert!(c.is_critical());
        assert_eq!(c.threshold_pct, 2.0);
        assert_eq!(c.filtered_locality, SpatialClass::Single);
    }

    #[test]
    fn criticality_fully_filtered_is_not_critical() {
        let shape = OutputShape::d1(2);
        let golden = vec![1.0; 2];
        let observed = vec![1.001, 1.002];
        let r = report_from(&golden, &observed, shape);
        let c = r.criticality(
            &ToleranceFilter::paper_default(),
            &LocalityClassifier::default(),
        );
        assert_eq!(c.incorrect_elements, 2);
        assert!(!c.is_critical());
        assert_eq!(c.filtered_mean_relative_error, None);
    }

    proptest! {
        #[test]
        fn mean_relative_error_between_min_and_max(
            errors in proptest::collection::vec(0.0f64..1e4, 1..40)) {
            let mismatches: Vec<Mismatch> = errors.iter().enumerate()
                .map(|(i, &e)| Mismatch::new([i, 0, 0], 1.0 + e / 100.0, 1.0))
                .collect();
            let r = ErrorReport::new(OutputShape::d1(errors.len().max(1)), mismatches);
            let mre = r.mean_relative_error().unwrap();
            let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = errors.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(mre >= lo - 1e-6 && mre <= hi + 1e-6);
        }
    }
}
