//! SIMD execution core with runtime ISA dispatch.
//!
//! The simulator's hottest loops — the set-associative cache way-scan,
//! the NaN-aware golden-vs-observed mismatch scan, the dirty-span
//! clamp, snapshot delta copies and the DGEMM row FMA — are expressed
//! once as [`KernelExecutor`] primitives with three implementations:
//!
//! * [`Scalar`] — the bit-identity reference. Plain loops, no
//!   target-feature requirements, runs everywhere.
//! * [`Avx2`] — x86-64 AVX2 + FMA intrinsics, selected at runtime via
//!   `is_x86_feature_detected!`.
//! * [`Neon`] — aarch64 NEON (always available on aarch64).
//!
//! The active ISA is detected **once** per process and cached; every
//! dispatching free function (e.g. [`find_u64`], [`next_mismatch_f64`])
//! branches on that cached value. Correctness never depends on the
//! choice: each vectorized primitive is required to produce results
//! byte-identical to [`Scalar`] on every input (asserted by the
//! property suite in `tests/simd_parity.rs`), so outputs, event
//! streams and campaign summaries are the same for a fixed seed no
//! matter which ISA executed them. Only the wall-clock differs.
//!
//! # Forcing the scalar reference
//!
//! Three escape hatches, strongest first:
//!
//! 1. `RADCRIT_FORCE_SCALAR` environment variable (any value except
//!    `0`/empty) — pins detection itself to [`Isa::Scalar`].
//! 2. [`force_scalar`] — process-wide permanent downgrade, used by the
//!    `--scalar` CLI flag.
//! 3. [`scalar_scope`] — an RAII guard for scoping one job (e.g. a
//!    daemon job whose `JobSpec` requested `force_scalar`). Guards
//!    nest; the scalar override holds while at least one is alive.
//!    The override is process-wide, not thread-local — safe, because
//!    ISA choice never changes bytes, only speed.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Instruction-set architecture a [`KernelExecutor`] implementation
/// targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar loops — the bit-identity reference.
    Scalar,
    /// x86-64 AVX2 + FMA (runtime-detected).
    Avx2,
    /// aarch64 Advanced SIMD (baseline on aarch64).
    Neon,
}

impl Isa {
    /// Stable lower-case name used in logs, metrics labels and bench
    /// rows (`"scalar"`, `"avx2"`, `"neon"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of live scalar overrides: [`force_scalar`] counts as one
/// forever; each [`ScalarGuard`] counts as one while alive.
static SCALAR_OVERRIDES: AtomicUsize = AtomicUsize::new(0);

/// Cached detection result: 0 = not yet detected, else `Isa` + 1.
static DETECTED: AtomicU8 = AtomicU8::new(0);

fn detect() -> Isa {
    if std::env::var("RADCRIT_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return Isa::Scalar;
    }
    hardware()
}

/// The best ISA this host's hardware supports, ignoring every
/// override — scoped guards, [`force_scalar`], and the
/// `RADCRIT_FORCE_SCALAR` pin alike. This is what detection would pick
/// on an unpinned start; benchmark gating uses it to tell "pinned to
/// scalar on a vector host" apart from "a genuinely scalar host".
/// Uncached — callers are cold paths.
#[must_use]
pub fn hardware() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Isa::Neon;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

#[cold]
fn detect_and_store() -> Isa {
    let isa = detect();
    let code = match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
        Isa::Neon => 3,
    };
    DETECTED.store(code, Ordering::Relaxed);
    isa
}

/// The ISA the dispatching free functions will use *right now*:
/// [`Isa::Scalar`] while any override is in force, else the detected
/// best ISA of this host.
#[inline(always)]
#[must_use]
pub fn active() -> Isa {
    if SCALAR_OVERRIDES.load(Ordering::Relaxed) > 0 {
        return Isa::Scalar;
    }
    match DETECTED.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Avx2,
        3 => Isa::Neon,
        _ => detect_and_store(),
    }
}

/// The ISA runtime detection picked for this host, ignoring overrides
/// (still [`Isa::Scalar`] when `RADCRIT_FORCE_SCALAR` pinned it).
#[must_use]
pub fn detected() -> Isa {
    match DETECTED.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Avx2,
        3 => Isa::Neon,
        _ => detect_and_store(),
    }
}

/// Permanently forces the scalar reference path for the rest of the
/// process (the `--scalar` CLI flag). Idempotent in effect; each call
/// adds one never-released override.
pub fn force_scalar() {
    SCALAR_OVERRIDES.fetch_add(1, Ordering::Relaxed);
}

/// RAII override that pins dispatch to [`Isa::Scalar`] while alive.
///
/// Returned by [`scalar_scope`]; guards nest and may be held across
/// threads (the override is process-wide).
#[derive(Debug)]
pub struct ScalarGuard(());

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        SCALAR_OVERRIDES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Pins dispatch to the scalar reference until the returned guard
/// drops. Used per-job by the daemon when a `JobSpec` sets
/// `force_scalar`.
#[must_use]
pub fn scalar_scope() -> ScalarGuard {
    SCALAR_OVERRIDES.fetch_add(1, Ordering::Relaxed);
    ScalarGuard(())
}

/// Pins dispatch to scalar only when `force` is true; `None` otherwise.
#[must_use]
pub fn scalar_scope_if(force: bool) -> Option<ScalarGuard> {
    force.then(scalar_scope)
}

// ---------------------------------------------------------------------
// The executor trait and its dispatching free functions
// ---------------------------------------------------------------------

/// The SIMD primitives every ISA backend implements.
///
/// Each method must be **bit-identical** to the [`Scalar`]
/// implementation on every input: same return values, same memory
/// contents, including NaN payloads and tie-breaking (first match,
/// first minimum). `tests/simd_parity.rs` asserts this property.
///
/// One carve-out: when a *fused multiply-add* result is NaN, only its
/// NaN-ness is pinned, not the payload bits. Without `-C target-cpu`
/// guarantees the scalar [`f64::mul_add`] may lower to the soft-float
/// `fma` libcall, whose NaN propagation differs from the hardware
/// `vfmadd`/`fmla` instruction — and propagation also differs between
/// architectures. Every consumer is payload-blind (the compare rule
/// matches any NaN to any NaN and relative error maps every NaN to
/// infinity), so campaign outcomes and summaries stay bit-identical
/// across backends regardless.
pub trait KernelExecutor {
    /// The ISA this backend targets.
    const ISA: Isa;

    /// Index of the first element equal to `needle` (cache way-scan /
    /// flip-table line lookup).
    fn find_u64(haystack: &[u64], needle: u64) -> Option<usize>;

    /// Index of the first minimum element (LRU victim scan).
    ///
    /// # Panics
    ///
    /// Panics when `vals` is empty.
    fn min_index_u64(vals: &[u64]) -> usize;

    /// First index `>= from` where `golden[i]` and `observed[i]` do
    /// not match under the comparison rule of
    /// [`crate::compare::compare_slices`]: equal values match, and a
    /// NaN matches a NaN.
    fn next_mismatch_f64(golden: &[f64], observed: &[f64], from: usize) -> Option<usize>;

    /// Single-precision variant of
    /// [`KernelExecutor::next_mismatch_f64`].
    fn next_mismatch_f32(golden: &[f32], observed: &[f32], from: usize) -> Option<usize>;

    /// `acc[i] = a * row[i] + acc[i]` with a single rounding (fused
    /// multiply-add) over `min(row.len(), acc.len())` elements — the
    /// DGEMM inner row kernel.
    fn fma_row(a: f64, row: &[f64], acc: &mut [f64]);

    /// One fused multiply-add `a * b + c` with a single rounding —
    /// bit-identical to [`f64::mul_add`].
    fn fma(a: f64, b: f64, c: f64) -> f64;

    /// Copies `src` into `dst` (snapshot delta capture/apply, fork
    /// restore).
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    fn copy_f64(src: &[f64], dst: &mut [f64]);

    /// The clamp half of the dirty-span union: appends each span with
    /// `n > 0 && start < len` to `out` as `(start, min(start + n, len))`
    /// (saturating add), preserving input order. Sorting and merging
    /// stay scalar in [`crate::dirty::DirtyRegion::from_spans`].
    fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>);
}

macro_rules! dispatch {
    ($method:ident ( $($arg:expr),* )) => {
        match active() {
            Isa::Scalar => Scalar::$method($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => Avx2::$method($($arg),*),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => Neon::$method($($arg),*),
            #[allow(unreachable_patterns)]
            _ => Scalar::$method($($arg),*),
        }
    };
}

/// [`KernelExecutor::find_u64`] on the active ISA.
#[inline]
#[must_use]
pub fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
    dispatch!(find_u64(haystack, needle))
}

/// [`KernelExecutor::min_index_u64`] on the active ISA.
///
/// # Panics
///
/// Panics when `vals` is empty.
#[inline]
#[must_use]
pub fn min_index_u64(vals: &[u64]) -> usize {
    dispatch!(min_index_u64(vals))
}

/// [`KernelExecutor::next_mismatch_f64`] on the active ISA.
#[inline]
#[must_use]
pub fn next_mismatch_f64(golden: &[f64], observed: &[f64], from: usize) -> Option<usize> {
    dispatch!(next_mismatch_f64(golden, observed, from))
}

/// [`KernelExecutor::next_mismatch_f32`] on the active ISA.
#[inline]
#[must_use]
pub fn next_mismatch_f32(golden: &[f32], observed: &[f32], from: usize) -> Option<usize> {
    dispatch!(next_mismatch_f32(golden, observed, from))
}

/// [`KernelExecutor::fma_row`] on the active ISA.
#[inline]
pub fn fma_row(a: f64, row: &[f64], acc: &mut [f64]) {
    dispatch!(fma_row(a, row, acc))
}

/// [`KernelExecutor::fma`] on the active ISA.
#[inline]
#[must_use]
pub fn fma(a: f64, b: f64, c: f64) -> f64 {
    dispatch!(fma(a, b, c))
}

/// [`KernelExecutor::copy_f64`] on the active ISA.
///
/// # Panics
///
/// Panics when the lengths differ.
#[inline]
pub fn copy_f64(src: &[f64], dst: &mut [f64]) {
    dispatch!(copy_f64(src, dst))
}

/// [`KernelExecutor::clamp_spans`] on the active ISA.
#[inline]
pub fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>) {
    dispatch!(clamp_spans(spans, len, out))
}

// ---------------------------------------------------------------------
// Scalar: the bit-identity reference
// ---------------------------------------------------------------------

/// Portable scalar reference implementation — the semantics every
/// vectorized backend must reproduce bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct Scalar;

/// The shared match rule: equal values match, and a NaN matches a NaN
/// (the golden run legitimately produced an invalid value there).
#[inline(always)]
fn values_match_f64(golden: f64, observed: f64) -> bool {
    (golden == observed) || (golden.is_nan() && observed.is_nan())
}

#[inline(always)]
fn values_match_f32(golden: f32, observed: f32) -> bool {
    (golden == observed) || (golden.is_nan() && observed.is_nan())
}

impl KernelExecutor for Scalar {
    const ISA: Isa = Isa::Scalar;

    #[inline]
    fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
        haystack.iter().position(|&v| v == needle)
    }

    #[inline]
    fn min_index_u64(vals: &[u64]) -> usize {
        assert!(!vals.is_empty(), "min_index_u64 on empty slice");
        let mut best = 0;
        for (i, &v) in vals.iter().enumerate().skip(1) {
            if v < vals[best] {
                best = i;
            }
        }
        best
    }

    #[inline]
    fn next_mismatch_f64(golden: &[f64], observed: &[f64], from: usize) -> Option<usize> {
        let n = golden.len().min(observed.len());
        (from..n).find(|&i| !values_match_f64(golden[i], observed[i]))
    }

    #[inline]
    fn next_mismatch_f32(golden: &[f32], observed: &[f32], from: usize) -> Option<usize> {
        let n = golden.len().min(observed.len());
        (from..n).find(|&i| !values_match_f32(golden[i], observed[i]))
    }

    #[inline]
    fn fma_row(a: f64, row: &[f64], acc: &mut [f64]) {
        // `mul_add` is correctly rounded whether it lowers to an FMA
        // instruction or the soft-float fallback, so this is
        // bit-identical to the AVX2/NEON fused path on every input.
        for (slot, &b) in acc.iter_mut().zip(row) {
            *slot = a.mul_add(b, *slot);
        }
    }

    #[inline]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        a.mul_add(b, c)
    }

    #[inline]
    fn copy_f64(src: &[f64], dst: &mut [f64]) {
        dst.copy_from_slice(src);
    }

    #[inline]
    fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>) {
        for &(start, n) in spans {
            if n > 0 && start < len {
                out.push((start, start.saturating_add(n).min(len)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Avx2: x86-64 AVX2 + FMA
// ---------------------------------------------------------------------

/// AVX2 + FMA backend (x86-64, runtime-detected).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
        let n = haystack.len();
        let ptr = haystack.as_ptr();
        let vn = _mm256_set1_epi64x(needle as i64);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(ptr.add(i).cast());
            let eq = _mm256_cmpeq_epi64(v, vn);
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 4;
        }
        while i < n {
            if *haystack.get_unchecked(i) == needle {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_index_u64(vals: &[u64]) -> usize {
        let n = vals.len();
        assert!(n > 0, "min_index_u64 on empty slice");
        if n <= 8 {
            // Short scans (a 4-way L1 LRU victim pick, the hot case)
            // lose to three scalar compares once the vector path's
            // spill + re-scan epilogue is counted.
            return super::Scalar_min_index(vals);
        }
        let ptr = vals.as_ptr();
        // Unsigned min via the sign-flip trick: XOR the sign bit so
        // signed 64-bit compares order the flipped values like the
        // unsigned originals.
        let sign = _mm256_set1_epi64x(i64::MIN);
        let mut vmin = _mm256_xor_si256(_mm256_loadu_si256(ptr.cast()), sign);
        let mut i = 4;
        while i + 4 <= n {
            let v = _mm256_xor_si256(_mm256_loadu_si256(ptr.add(i).cast()), sign);
            // Keep the lane-wise smaller of (vmin, v).
            let gt = _mm256_cmpgt_epi64(vmin, v);
            vmin = _mm256_blendv_epi8(vmin, v, gt);
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vmin);
        let mut min = lanes
            .iter()
            .map(|&l| l ^ (i64::MIN as u64))
            .min()
            .unwrap_or(u64::MAX);
        while i < n {
            let v = *vals.get_unchecked(i);
            if v < min {
                min = v;
            }
            i += 1;
        }
        // First index holding the minimum — reproduces the scalar
        // first-tie choice exactly.
        find_u64(vals, min).unwrap_or(0)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn next_mismatch_f64(
        golden: &[f64],
        observed: &[f64],
        from: usize,
    ) -> Option<usize> {
        let n = golden.len().min(observed.len());
        let (gp, op) = (golden.as_ptr(), observed.as_ptr());
        let mut i = from;
        while i + 4 <= n {
            let g = _mm256_loadu_pd(gp.add(i));
            let o = _mm256_loadu_pd(op.add(i));
            let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(g, o);
            let g_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(g, g);
            let o_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(o, o);
            let ok = _mm256_or_pd(eq, _mm256_and_pd(g_nan, o_nan));
            let m = _mm256_movemask_pd(ok);
            if m != 0xF {
                return Some(i + (!m & 0xF).trailing_zeros() as usize);
            }
            i += 4;
        }
        while i < n {
            let (g, o) = (*golden.get_unchecked(i), *observed.get_unchecked(i));
            if !super::values_match_f64(g, o) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn next_mismatch_f32(
        golden: &[f32],
        observed: &[f32],
        from: usize,
    ) -> Option<usize> {
        let n = golden.len().min(observed.len());
        let (gp, op) = (golden.as_ptr(), observed.as_ptr());
        let mut i = from;
        while i + 8 <= n {
            let g = _mm256_loadu_ps(gp.add(i));
            let o = _mm256_loadu_ps(op.add(i));
            let eq = _mm256_cmp_ps::<_CMP_EQ_OQ>(g, o);
            let g_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(g, g);
            let o_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(o, o);
            let ok = _mm256_or_ps(eq, _mm256_and_ps(g_nan, o_nan));
            let m = _mm256_movemask_ps(ok);
            if m != 0xFF {
                return Some(i + (!m & 0xFF).trailing_zeros() as usize);
            }
            i += 8;
        }
        while i < n {
            let (g, o) = (*golden.get_unchecked(i), *observed.get_unchecked(i));
            if !super::values_match_f32(g, o) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn fma_row(a: f64, row: &[f64], acc: &mut [f64]) {
        let n = row.len().min(acc.len());
        let rp = row.as_ptr();
        let ap = acc.as_mut_ptr();
        let va = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 16 <= n {
            let c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(rp.add(i)), _mm256_loadu_pd(ap.add(i)));
            let c1 = _mm256_fmadd_pd(
                va,
                _mm256_loadu_pd(rp.add(i + 4)),
                _mm256_loadu_pd(ap.add(i + 4)),
            );
            let c2 = _mm256_fmadd_pd(
                va,
                _mm256_loadu_pd(rp.add(i + 8)),
                _mm256_loadu_pd(ap.add(i + 8)),
            );
            let c3 = _mm256_fmadd_pd(
                va,
                _mm256_loadu_pd(rp.add(i + 12)),
                _mm256_loadu_pd(ap.add(i + 12)),
            );
            _mm256_storeu_pd(ap.add(i), c0);
            _mm256_storeu_pd(ap.add(i + 4), c1);
            _mm256_storeu_pd(ap.add(i + 8), c2);
            _mm256_storeu_pd(ap.add(i + 12), c3);
            i += 16;
        }
        while i + 4 <= n {
            let c = _mm256_fmadd_pd(va, _mm256_loadu_pd(rp.add(i)), _mm256_loadu_pd(ap.add(i)));
            _mm256_storeu_pd(ap.add(i), c);
            i += 4;
        }
        while i < n {
            *acc.get_unchecked_mut(i) = a.mul_add(*row.get_unchecked(i), *acc.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "fma")]
    pub unsafe fn fma(a: f64, b: f64, c: f64) -> f64 {
        // Inside an fma-enabled region this lowers to one vfmadd
        // instruction; the scalar soft-float fallback rounds
        // identically.
        a.mul_add(b, c)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn copy_f64(src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "copy_f64 length mismatch");
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let v0 = _mm256_loadu_pd(sp.add(i));
            let v1 = _mm256_loadu_pd(sp.add(i + 4));
            let v2 = _mm256_loadu_pd(sp.add(i + 8));
            let v3 = _mm256_loadu_pd(sp.add(i + 12));
            _mm256_storeu_pd(dp.add(i), v0);
            _mm256_storeu_pd(dp.add(i + 4), v1);
            _mm256_storeu_pd(dp.add(i + 8), v2);
            _mm256_storeu_pd(dp.add(i + 12), v3);
            i += 16;
        }
        while i + 4 <= n {
            _mm256_storeu_pd(dp.add(i), _mm256_loadu_pd(sp.add(i)));
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = *src.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>) {
        // (usize, usize) pairs are two contiguous u64 lanes, so one
        // 256-bit vector holds two spans as [start0, n0, start1, n1].
        let n = spans.len();
        out.reserve(n);
        let ptr = spans.as_ptr().cast::<u64>();
        let sign = _mm256_set1_epi64x(i64::MIN);
        let vlen = _mm256_set1_epi64x(len as i64);
        let vlen_f = _mm256_xor_si256(vlen, sign);
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm256_loadu_si256(ptr.add(i * 2).cast());
            // end = start + n, saturating: detect unsigned overflow by
            // (end ^ sign) < (start ^ sign) and substitute u64::MAX.
            let starts = v;
            let ends = _mm256_add_epi64(starts, _mm256_srli_si256::<8>(v));
            // lanes: [start0, ?, start1, ?] + [n0, 0, n1, 0] — only the
            // even lanes carry a meaningful end; odd lanes are ignored.
            let of =
                _mm256_cmpgt_epi64(_mm256_xor_si256(starts, sign), _mm256_xor_si256(ends, sign));
            let ends = _mm256_or_si256(ends, of);
            // end = min(end, len) via flipped signed compare.
            let gt_len = _mm256_cmpgt_epi64(_mm256_xor_si256(ends, sign), vlen_f);
            let ends = _mm256_blendv_epi8(ends, vlen, gt_len);
            let mut s = [0u64; 4];
            let mut e = [0u64; 4];
            _mm256_storeu_si256(s.as_mut_ptr().cast(), starts);
            _mm256_storeu_si256(e.as_mut_ptr().cast(), ends);
            for lane in [0usize, 2] {
                let (start, span_n) = (s[lane] as usize, s[lane + 1] as usize);
                if span_n > 0 && start < len {
                    out.push((start, e[lane] as usize));
                }
            }
            i += 2;
        }
        while i < n {
            let (start, span_n) = *spans.get_unchecked(i);
            if span_n > 0 && start < len {
                out.push((start, start.saturating_add(span_n).min(len)));
            }
            i += 1;
        }
    }
}

// Free-function alias so the AVX2 module can borrow the scalar
// reference for short slices without trait syntax noise.
#[cfg(target_arch = "x86_64")]
#[allow(non_snake_case)]
fn Scalar_min_index(vals: &[u64]) -> usize {
    <Scalar as KernelExecutor>::min_index_u64(vals)
}

#[cfg(target_arch = "x86_64")]
impl KernelExecutor for Avx2 {
    const ISA: Isa = Isa::Avx2;

    #[inline]
    fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
        // Safety: constructed only after `is_x86_feature_detected!`
        // confirmed AVX2 (+FMA) — see `detect`.
        unsafe { avx2::find_u64(haystack, needle) }
    }

    #[inline]
    fn min_index_u64(vals: &[u64]) -> usize {
        unsafe { avx2::min_index_u64(vals) }
    }

    #[inline]
    fn next_mismatch_f64(golden: &[f64], observed: &[f64], from: usize) -> Option<usize> {
        unsafe { avx2::next_mismatch_f64(golden, observed, from) }
    }

    #[inline]
    fn next_mismatch_f32(golden: &[f32], observed: &[f32], from: usize) -> Option<usize> {
        unsafe { avx2::next_mismatch_f32(golden, observed, from) }
    }

    #[inline]
    fn fma_row(a: f64, row: &[f64], acc: &mut [f64]) {
        unsafe { avx2::fma_row(a, row, acc) }
    }

    #[inline]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        unsafe { avx2::fma(a, b, c) }
    }

    #[inline]
    fn copy_f64(src: &[f64], dst: &mut [f64]) {
        unsafe { avx2::copy_f64(src, dst) }
    }

    #[inline]
    fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>) {
        unsafe { avx2::clamp_spans(spans, len, out) }
    }
}

// ---------------------------------------------------------------------
// Neon: aarch64 Advanced SIMD
// ---------------------------------------------------------------------

/// NEON backend (aarch64 baseline — no runtime detection needed).
#[cfg(target_arch = "aarch64")]
#[derive(Debug, Clone, Copy)]
pub struct Neon;

#[cfg(target_arch = "aarch64")]
impl KernelExecutor for Neon {
    const ISA: Isa = Isa::Neon;

    #[inline]
    fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
        use std::arch::aarch64::*;
        let n = haystack.len();
        let ptr = haystack.as_ptr();
        // Safety: NEON is baseline on aarch64.
        unsafe {
            let vn = vdupq_n_u64(needle);
            let mut i = 0;
            while i + 2 <= n {
                let eq = vceqq_u64(vld1q_u64(ptr.add(i)), vn);
                if vgetq_lane_u64::<0>(eq) != 0 {
                    return Some(i);
                }
                if vgetq_lane_u64::<1>(eq) != 0 {
                    return Some(i + 1);
                }
                i += 2;
            }
            while i < n {
                if *haystack.get_unchecked(i) == needle {
                    return Some(i);
                }
                i += 1;
            }
        }
        None
    }

    #[inline]
    fn min_index_u64(vals: &[u64]) -> usize {
        // NEON has no unsigned 64-bit min; the scalar scan is already
        // optimal for the short LRU arrays this serves.
        <Scalar as KernelExecutor>::min_index_u64(vals)
    }

    #[inline]
    fn next_mismatch_f64(golden: &[f64], observed: &[f64], from: usize) -> Option<usize> {
        use std::arch::aarch64::*;
        let n = golden.len().min(observed.len());
        let (gp, op) = (golden.as_ptr(), observed.as_ptr());
        unsafe {
            let mut i = from;
            while i + 2 <= n {
                let g = vld1q_f64(gp.add(i));
                let o = vld1q_f64(op.add(i));
                let eq = vceqq_f64(g, o);
                let g_nan = vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(g, g)));
                let o_nan = vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(o, o)));
                let both_nan = vreinterpretq_u64_u32(vandq_u32(g_nan, o_nan));
                let ok = vorrq_u64(eq, both_nan);
                if vgetq_lane_u64::<0>(ok) == 0 {
                    return Some(i);
                }
                if vgetq_lane_u64::<1>(ok) == 0 {
                    return Some(i + 1);
                }
                i += 2;
            }
            while i < n {
                let (g, o) = (*golden.get_unchecked(i), *observed.get_unchecked(i));
                if !values_match_f64(g, o) {
                    return Some(i);
                }
                i += 1;
            }
        }
        None
    }

    #[inline]
    fn next_mismatch_f32(golden: &[f32], observed: &[f32], from: usize) -> Option<usize> {
        <Scalar as KernelExecutor>::next_mismatch_f32(golden, observed, from)
    }

    #[inline]
    fn fma_row(a: f64, row: &[f64], acc: &mut [f64]) {
        use std::arch::aarch64::*;
        let n = row.len().min(acc.len());
        let rp = row.as_ptr();
        let ap = acc.as_mut_ptr();
        unsafe {
            let va = vdupq_n_f64(a);
            let mut i = 0;
            while i + 2 <= n {
                let c = vfmaq_f64(vld1q_f64(ap.add(i)), va, vld1q_f64(rp.add(i)));
                vst1q_f64(ap.add(i), c);
                i += 2;
            }
            while i < n {
                *acc.get_unchecked_mut(i) = a.mul_add(*row.get_unchecked(i), *acc.get_unchecked(i));
                i += 1;
            }
        }
    }

    #[inline]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        // aarch64 always lowers `mul_add` to the fused instruction.
        a.mul_add(b, c)
    }

    #[inline]
    fn copy_f64(src: &[f64], dst: &mut [f64]) {
        dst.copy_from_slice(src);
    }

    #[inline]
    fn clamp_spans(spans: &[(usize, usize)], len: usize, out: &mut Vec<(usize, usize)>) {
        <Scalar as KernelExecutor>::clamp_spans(spans, len, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Neon.name(), "neon");
        assert_eq!(Isa::Avx2.to_string(), "avx2");
    }

    #[test]
    fn scalar_scope_pins_and_releases() {
        let before = active();
        {
            let _g = scalar_scope();
            assert_eq!(active(), Isa::Scalar);
            {
                let _inner = scalar_scope_if(true);
                assert_eq!(active(), Isa::Scalar);
            }
            assert_eq!(active(), Isa::Scalar, "guards must nest");
        }
        assert_eq!(active(), before);
        assert!(scalar_scope_if(false).is_none());
    }

    #[test]
    fn detected_ignores_scoped_overrides() {
        let detected_before = detected();
        let _g = scalar_scope();
        assert_eq!(detected(), detected_before);
    }

    #[test]
    fn scalar_find_and_min() {
        assert_eq!(Scalar::find_u64(&[3, 1, 3], 3), Some(0));
        assert_eq!(Scalar::find_u64(&[], 3), None);
        assert_eq!(Scalar::min_index_u64(&[5, 2, 2, 7]), 1, "first tie wins");
    }

    #[test]
    fn scalar_mismatch_scan_handles_nan_rule() {
        let g = [1.0, f64::NAN, 3.0];
        let o = [1.0, f64::NAN, 4.0];
        assert_eq!(Scalar::next_mismatch_f64(&g, &o, 0), Some(2));
        assert_eq!(Scalar::next_mismatch_f64(&g, &o, 3), None);
        let g32 = [f32::NAN, 2.0];
        let o32 = [1.0, 2.0];
        assert_eq!(Scalar::next_mismatch_f32(&g32, &o32, 0), Some(0));
    }

    #[test]
    fn scalar_clamp_spans_matches_doc_rule() {
        let mut out = Vec::new();
        Scalar::clamp_spans(
            &[(0, 4), (5, 0), (60, 10), (70, 4), (usize::MAX, 1)],
            64,
            &mut out,
        );
        assert_eq!(out, vec![(0, 4), (60, 64)]);
    }
}
