//! FIT (Failure In Time) accounting.
//!
//! §IV-D: error rates measured under accelerated beams, scaled down to the
//! natural neutron flux, predict realistic error rates expressed in FIT —
//! failures per 10⁹ device-hours. The paper publishes *relative* FIT in
//! arbitrary units (absolute values are business-sensitive); this module
//! supports both the physical conversion and the normalization to a.u.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::locality::SpatialClass;

/// The reference terrestrial neutron flux at sea level (JEDEC JESD89A,
/// cited as 13 n/(cm²·h) in §II-A).
pub const SEA_LEVEL_FLUX_N_CM2_H: f64 = 13.0;

/// Hours per FIT period (FIT = failures per billion device-hours).
pub const FIT_HOURS: f64 = 1.0e9;

/// Accumulated neutron fluence, in n/cm².
///
/// Fluence is the time-integral of flux over a test campaign; dividing an
/// event count by it yields a cross-section.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Fluence(f64);

impl Fluence {
    /// Creates a fluence value in n/cm².
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonPositiveFluence`] if the value is not a
    /// strictly positive finite number.
    pub fn new(n_per_cm2: f64) -> Result<Self, CoreError> {
        if !n_per_cm2.is_finite() || n_per_cm2 <= 0.0 {
            return Err(CoreError::NonPositiveFluence(n_per_cm2));
        }
        Ok(Fluence(n_per_cm2))
    }

    /// Fluence accumulated by a constant `flux` (n/(cm²·s)) over `seconds`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonPositiveFluence`] if the product is not
    /// strictly positive and finite.
    pub fn from_flux(flux_n_cm2_s: f64, seconds: f64) -> Result<Self, CoreError> {
        Fluence::new(flux_n_cm2_s * seconds)
    }

    /// The raw value in n/cm².
    pub fn n_per_cm2(&self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Fluence {
    type Output = Fluence;

    fn add(self, rhs: Fluence) -> Fluence {
        Fluence(self.0 + rhs.0)
    }
}

/// A FIT rate: expected failures per 10⁹ hours of natural operation.
///
/// Supports scaling into the arbitrary units of the paper's figures via
/// [`FitRate::normalized_to`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FitRate(f64);

impl FitRate {
    /// A zero rate.
    pub const ZERO: FitRate = FitRate(0.0);

    /// Computes the FIT rate implied by observing `events` failures over an
    /// accumulated beam `fluence`, scaled to `natural_flux` n/(cm²·h).
    ///
    /// `FIT = (events / fluence) × natural_flux × 10⁹`
    ///
    /// The first factor is the device/application cross-section in cm²; the
    /// remaining factors convert it to failures per 10⁹ h at ground level.
    pub fn from_events(events: usize, fluence: Fluence, natural_flux_n_cm2_h: f64) -> Self {
        let cross_section_cm2 = events as f64 / fluence.n_per_cm2();
        FitRate(cross_section_cm2 * natural_flux_n_cm2_h * FIT_HOURS)
    }

    /// [`FitRate::from_events`] with the JEDEC sea-level flux.
    pub fn from_events_sea_level(events: usize, fluence: Fluence) -> Self {
        Self::from_events(events, fluence, SEA_LEVEL_FLUX_N_CM2_H)
    }

    /// Creates a rate from a raw value (useful for a.u. data).
    pub fn from_raw(value: f64) -> Self {
        FitRate(value)
    }

    /// The raw numeric value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Expresses this rate in arbitrary units relative to `reference`,
    /// which maps to 1.0. This is how the paper makes cross-comparisons
    /// possible while hiding absolute FIT ("we use the same normalization
    /// for each device and code", §V).
    ///
    /// # Panics
    ///
    /// Panics if the reference rate is zero or non-finite.
    pub fn normalized_to(&self, reference: FitRate) -> f64 {
        assert!(
            reference.0.is_finite() && reference.0 != 0.0,
            "normalization reference must be finite and non-zero"
        );
        self.0 / reference.0
    }

    /// Multiplies the rate by a de-rating factor (§IV-D applies a distance
    /// de-rating so devices at different distances from the source are
    /// comparable).
    pub fn derated(&self, factor: f64) -> FitRate {
        FitRate(self.0 * factor)
    }
}

impl std::ops::Add for FitRate {
    type Output = FitRate;

    fn add(self, rhs: FitRate) -> FitRate {
        FitRate(self.0 + rhs.0)
    }
}

impl std::iter::Sum for FitRate {
    fn sum<I: Iterator<Item = FitRate>>(iter: I) -> FitRate {
        iter.fold(FitRate::ZERO, |a, b| a + b)
    }
}

/// A FIT rate broken down by spatial-locality class — one stacked bar of
/// Figs. 3, 5 and 7.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FitBreakdown {
    by_class: BTreeMap<SpatialClass, FitRate>,
}

impl FitBreakdown {
    /// Creates an empty break-down.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a break-down from per-class event counts and the campaign
    /// fluence, using the sea-level natural flux.
    pub fn from_counts(counts: &BTreeMap<SpatialClass, usize>, fluence: Fluence) -> Self {
        let by_class = counts
            .iter()
            .map(|(&class, &n)| (class, FitRate::from_events_sea_level(n, fluence)))
            .collect();
        FitBreakdown { by_class }
    }

    /// Adds `rate` to the bucket of `class`.
    pub fn add(&mut self, class: SpatialClass, rate: FitRate) {
        let slot = self.by_class.entry(class).or_insert(FitRate::ZERO);
        *slot = *slot + rate;
    }

    /// The rate for one class (zero when absent).
    pub fn rate(&self, class: SpatialClass) -> FitRate {
        self.by_class.get(&class).copied().unwrap_or(FitRate::ZERO)
    }

    /// The total rate across all classes (bar height).
    pub fn total(&self) -> FitRate {
        self.by_class.values().copied().sum()
    }

    /// The fraction of the total rate contributed by `class`, or 0 when
    /// the break-down is empty.
    pub fn fraction(&self, class: SpatialClass) -> f64 {
        let total = self.total().value();
        if total == 0.0 {
            0.0
        } else {
            self.rate(class).value() / total
        }
    }

    /// The combined fraction of several classes (e.g. cubic+square in
    /// §V-B).
    pub fn fraction_of(&self, classes: &[SpatialClass]) -> f64 {
        classes.iter().map(|&c| self.fraction(c)).sum()
    }

    /// Iterates over `(class, rate)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (SpatialClass, FitRate)> + '_ {
        self.by_class.iter().map(|(&c, &r)| (c, r))
    }

    /// The fraction of the total rate that ABFT-correctable classes
    /// (single + line) contribute; `1 − abft_correctable_fraction()` is
    /// the residual error rate under ABFT (§V-A: "DGEMM would be affected
    /// by only 20 % to 40 % of all errors on K40").
    pub fn abft_correctable_fraction(&self) -> f64 {
        self.iter()
            .filter(|(c, _)| c.abft_correctable())
            .map(|(_, r)| r.value())
            .sum::<f64>()
            / self.total().value().max(f64::MIN_POSITIVE)
    }
}

impl std::iter::FromIterator<(SpatialClass, FitRate)> for FitBreakdown {
    fn from_iter<I: IntoIterator<Item = (SpatialClass, FitRate)>>(iter: I) -> Self {
        let mut out = FitBreakdown::new();
        for (c, r) in iter {
            out.add(c, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fluence_rejects_nonpositive() {
        assert!(Fluence::new(0.0).is_err());
        assert!(Fluence::new(-1.0).is_err());
        assert!(Fluence::new(f64::NAN).is_err());
        assert!(Fluence::new(f64::INFINITY).is_err());
        assert!(Fluence::new(1.0).is_ok());
    }

    #[test]
    fn fluence_from_flux_integrates() {
        // LANSCE-like flux of 1e5 n/(cm²·s) over one hour.
        let f = Fluence::from_flux(1e5, 3600.0).unwrap();
        assert!((f.n_per_cm2() - 3.6e8).abs() < 1.0);
    }

    #[test]
    fn fit_physical_conversion() {
        // 10 events over 1e9 n/cm² → σ = 1e-8 cm²;
        // FIT = 1e-8 × 13 × 1e9 = 130.
        let fluence = Fluence::new(1e9).unwrap();
        let fit = FitRate::from_events_sea_level(10, fluence);
        assert!((fit.value() - 130.0).abs() < 1e-6);
    }

    #[test]
    fn normalization_to_arbitrary_units() {
        let a = FitRate::from_raw(50.0);
        let b = FitRate::from_raw(25.0);
        assert_eq!(b.normalized_to(a), 0.5);
        assert_eq!(a.normalized_to(a), 1.0);
    }

    #[test]
    #[should_panic(expected = "normalization reference")]
    fn normalizing_by_zero_panics() {
        FitRate::from_raw(1.0).normalized_to(FitRate::ZERO);
    }

    #[test]
    fn derating_scales() {
        let fit = FitRate::from_raw(100.0).derated(0.8);
        assert!((fit.value() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total_and_fraction() {
        let mut b = FitBreakdown::new();
        b.add(SpatialClass::Single, FitRate::from_raw(10.0));
        b.add(SpatialClass::Line, FitRate::from_raw(30.0));
        b.add(SpatialClass::Square, FitRate::from_raw(60.0));
        assert!((b.total().value() - 100.0).abs() < 1e-12);
        assert!((b.fraction(SpatialClass::Square) - 0.6).abs() < 1e-12);
        assert!((b.fraction_of(&[SpatialClass::Single, SpatialClass::Line]) - 0.4).abs() < 1e-12);
        assert!((b.abft_correctable_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(b.fraction(SpatialClass::Cubic), 0.0);
    }

    #[test]
    fn breakdown_from_counts() {
        let mut counts = BTreeMap::new();
        counts.insert(SpatialClass::Single, 13usize);
        counts.insert(SpatialClass::Random, 26usize);
        // FIT = events / fluence × 13 × 1e9 = events × 1 for this fluence.
        let fluence = Fluence::new(13.0e9).unwrap();
        let b = FitBreakdown::from_counts(&counts, fluence);
        assert!((b.rate(SpatialClass::Single).value() - 13.0).abs() < 1e-6);
        assert!((b.rate(SpatialClass::Random).value() - 26.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_collects_from_iterator() {
        let b: FitBreakdown = vec![
            (SpatialClass::Line, FitRate::from_raw(1.0)),
            (SpatialClass::Line, FitRate::from_raw(2.0)),
        ]
        .into_iter()
        .collect();
        assert!((b.rate(SpatialClass::Line).value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        let b = FitBreakdown::new();
        assert_eq!(b.total().value(), 0.0);
        assert_eq!(b.fraction(SpatialClass::Single), 0.0);
    }

    proptest! {
        #[test]
        fn fit_is_linear_in_events(n in 1usize..1000, fl in 1e6f64..1e12) {
            let fluence = Fluence::new(fl).unwrap();
            let one = FitRate::from_events_sea_level(1, fluence).value();
            let many = FitRate::from_events_sea_level(n, fluence).value();
            prop_assert!((many - one * n as f64).abs() <= 1e-9 * many.abs().max(1.0));
        }

        #[test]
        fn fractions_sum_to_one(rates in proptest::collection::vec(0.1f64..1e3, 1..6)) {
            let classes = SpatialClass::PLOTTED;
            let mut b = FitBreakdown::new();
            for (i, r) in rates.iter().enumerate() {
                b.add(classes[i % classes.len()], FitRate::from_raw(*r));
            }
            let sum: f64 = classes.iter().map(|&c| b.fraction(c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
