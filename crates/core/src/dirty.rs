//! Dirty output regions for differential execution.
//!
//! A differential injection run resumes from a golden-prefix snapshot and
//! therefore knows exactly which output elements *could* differ from the
//! golden output: elements stored by tiles executed after the resume
//! point (by either the golden schedule or the faulty one) plus elements
//! touched by end-of-kernel cache writebacks. Everything outside that set
//! is still the byte-for-byte golden prefix and needs no comparison.
//!
//! [`DirtyRegion`] is the canonical representation: a sorted, merged list
//! of half-open element ranges over the flat output buffer.

/// A sorted, non-overlapping set of half-open `[start, end)` element
/// ranges over a flat output buffer.
///
/// Built from an unsorted pile of `(start, len)` spans recorded during
/// execution; construction sorts, merges and clamps them.
///
/// # Examples
///
/// ```
/// use radcrit_core::dirty::DirtyRegion;
///
/// let region = DirtyRegion::from_spans(vec![(4, 4), (0, 2), (6, 4)], 16);
/// assert_eq!(region.ranges(), &[(0, 2), (4, 10)]);
/// assert_eq!(region.covered(), 8);
/// assert!(region.contains(5));
/// assert!(!region.contains(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyRegion {
    ranges: Vec<(usize, usize)>,
}

impl DirtyRegion {
    /// Builds a region from unsorted `(start, len)` spans, clamped to
    /// `len` elements. Overlapping and adjacent spans are merged.
    ///
    /// The drop-empty/clamp pass runs on the SIMD execution core
    /// ([`crate::exec::clamp_spans`]); the sort and merge stay scalar.
    #[must_use]
    pub fn from_spans(spans: Vec<(usize, usize)>, len: usize) -> Self {
        let mut clamped = Vec::new();
        crate::exec::clamp_spans(&spans, len, &mut clamped);
        clamped.sort_unstable();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for (start, end) in clamped {
            match ranges.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => ranges.push((start, end)),
            }
        }
        DirtyRegion { ranges }
    }

    /// The merged `[start, end)` ranges in ascending order.
    #[must_use]
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Total number of elements covered.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether no element is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether `idx` falls inside a covered range.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if idx < s {
                    std::cmp::Ordering::Greater
                } else if idx >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_overlapping_and_adjacent_spans() {
        let r = DirtyRegion::from_spans(vec![(0, 4), (2, 4), (6, 2), (10, 1)], 64);
        assert_eq!(r.ranges(), &[(0, 8), (10, 11)]);
        assert_eq!(r.covered(), 9);
    }

    #[test]
    fn clamps_to_length_and_drops_empty() {
        let r = DirtyRegion::from_spans(vec![(60, 10), (70, 4), (5, 0)], 64);
        assert_eq!(r.ranges(), &[(60, 64)]);
    }

    #[test]
    fn contains_uses_binary_search() {
        let r = DirtyRegion::from_spans(vec![(2, 2), (8, 4)], 16);
        for i in 0..16 {
            let expected = (2..4).contains(&i) || (8..12).contains(&i);
            assert_eq!(r.contains(i), expected, "idx {i}");
        }
    }

    #[test]
    fn empty_region() {
        let r = DirtyRegion::from_spans(vec![], 16);
        assert!(r.is_empty());
        assert_eq!(r.covered(), 0);
        assert!(!r.contains(0));
    }
}
