//! Individual output mismatches and their relative error.

use serde::{Deserialize, Serialize};

use crate::shape::Coord;

/// A single corrupted output element: where it is, what was read, and what
/// the golden execution produced.
///
/// The **relative error** metric of the paper (§III) is computed per
/// mismatch:
///
/// ```text
/// relative error = |read − expected| / |expected| × 100
/// ```
///
/// # Examples
///
/// ```
/// use radcrit_core::mismatch::Mismatch;
///
/// let m = Mismatch::new([0, 0, 0], 10.0, 1.0);
/// assert_eq!(m.relative_error(), 900.0); // "ten times the expected" → 900 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mismatch {
    coord: Coord,
    expected: f64,
    read: f64,
}

impl Mismatch {
    /// Creates a mismatch at `coord` where the device produced `read`
    /// instead of `expected`.
    pub fn new(coord: Coord, read: f64, expected: f64) -> Self {
        Mismatch {
            coord,
            expected,
            read,
        }
    }

    /// The coordinate of the corrupted element in the output geometry.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// The value produced by the (faulty) execution.
    pub fn read(&self) -> f64 {
        self.read
    }

    /// The golden (fault-free) value.
    pub fn expected(&self) -> f64 {
        self.expected
    }

    /// The relative error in percent: `|read − expected| / |expected| × 100`.
    ///
    /// When the expected value is exactly zero the ratio is undefined; this
    /// implementation returns `f64::INFINITY` for any non-zero read (the
    /// corruption is unboundedly off in relative terms) and `0.0` when the
    /// read is also zero. NaN reads (e.g. a corrupted exponent producing an
    /// invalid operation) yield `f64::INFINITY` as well, since a NaN output
    /// is maximally wrong for any tolerance.
    pub fn relative_error(&self) -> f64 {
        if self.read.is_nan() || self.expected.is_nan() {
            return f64::INFINITY;
        }
        let diff = (self.read - self.expected).abs();
        if diff == 0.0 {
            return 0.0;
        }
        if self.expected == 0.0 {
            return f64::INFINITY;
        }
        diff / self.expected.abs() * 100.0
    }

    /// The relative error saturated at `cap` percent.
    ///
    /// The paper caps plotted errors (100 % for DGEMM in Fig. 2, 20 000 %
    /// for LavaMD in Fig. 4) "to improve figure quality"; this helper
    /// reproduces that presentation rule.
    pub fn relative_error_capped(&self, cap: f64) -> f64 {
        self.relative_error().min(cap)
    }

    /// Whether this mismatch survives a tolerance of `threshold_pct`
    /// percent, i.e. whether its relative error is **strictly greater**
    /// than the threshold (the paper "considers only mismatches with
    /// relative errors greater than 2 %").
    pub fn exceeds(&self, threshold_pct: f64) -> bool {
        self.relative_error() > threshold_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_ten_times_is_900_percent() {
        let m = Mismatch::new([0, 0, 0], 10.0, 1.0);
        assert_eq!(m.relative_error(), 900.0);
    }

    #[test]
    fn symmetric_under_sign_of_difference() {
        let over = Mismatch::new([0, 0, 0], 1.5, 1.0);
        let under = Mismatch::new([0, 0, 0], 0.5, 1.0);
        assert_eq!(over.relative_error(), under.relative_error());
    }

    #[test]
    fn negative_expected_uses_magnitude() {
        let m = Mismatch::new([0, 0, 0], -1.5, -1.0);
        assert!((m.relative_error() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_expected_nonzero_read_is_infinite() {
        let m = Mismatch::new([0, 0, 0], 0.25, 0.0);
        assert!(m.relative_error().is_infinite());
        // The infinity is positive and exceeds every finite tolerance —
        // a corrupted zero is always critical, never NaN-shaped.
        assert_eq!(m.relative_error(), f64::INFINITY);
        assert!(!m.relative_error().is_nan());
        assert!(m.exceeds(f64::MAX));
    }

    #[test]
    fn zero_expected_zero_read_is_zero() {
        let m = Mismatch::new([0, 0, 0], 0.0, 0.0);
        assert_eq!(m.relative_error(), 0.0);
    }

    #[test]
    fn negative_zero_is_the_same_zero() {
        // A strike flipping the sign bit of 0.0 produces -0.0; the
        // difference is exactly 0.0, so the relative error must be too
        // (never 0/0 = NaN).
        let m = Mismatch::new([0, 0, 0], -0.0, 0.0);
        assert_eq!(m.relative_error(), 0.0);
        let m = Mismatch::new([0, 0, 0], 0.25, -0.0);
        assert_eq!(m.relative_error(), f64::INFINITY);
    }

    #[test]
    fn tiny_subnormal_expected_stays_finite() {
        // Near-zero (but nonzero) golden values divide through normally;
        // the guard only triggers at exactly zero.
        let m = Mismatch::new([0, 0, 0], 0.0, f64::MIN_POSITIVE);
        assert!((m.relative_error() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nan_read_is_infinite() {
        let m = Mismatch::new([0, 0, 0], f64::NAN, 1.0);
        assert!(m.relative_error().is_infinite());
        assert!(m.exceeds(2.0));
    }

    #[test]
    fn capping_saturates() {
        let m = Mismatch::new([0, 0, 0], 10.0, 1.0);
        assert_eq!(m.relative_error_capped(100.0), 100.0);
        let small = Mismatch::new([0, 0, 0], 1.05, 1.0);
        assert!((small.relative_error_capped(100.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exceeds_is_strict() {
        let m = Mismatch::new([0, 0, 0], 1.02, 1.0);
        // exactly 2 % does NOT exceed a 2 % threshold
        assert!((m.relative_error() - 2.0).abs() < 1e-9);
        assert!(!m.exceeds(2.0 + 1e-9));
        assert!(m.exceeds(1.9));
    }

    proptest! {
        #[test]
        fn relative_error_is_non_negative(read in -1e12f64..1e12, expected in -1e12f64..1e12) {
            let m = Mismatch::new([0, 0, 0], read, expected);
            prop_assert!(m.relative_error() >= 0.0);
        }

        #[test]
        fn scaling_both_values_preserves_relative_error(
            read in 0.1f64..1e6, expected in 0.1f64..1e6, k in 0.1f64..1e3) {
            let a = Mismatch::new([0, 0, 0], read, expected).relative_error();
            let b = Mismatch::new([0, 0, 0], read * k, expected * k).relative_error();
            prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
        }

        #[test]
        fn cap_never_exceeded(read in -1e9f64..1e9, expected in 0.1f64..1e9, cap in 0.0f64..1e5) {
            let m = Mismatch::new([0, 0, 0], read, expected);
            prop_assert!(m.relative_error_capped(cap) <= cap);
        }

        #[test]
        fn zero_expected_never_yields_nan(read in -1e12f64..1e12) {
            // Regression guard for the division-by-zero audit: a zero
            // golden value must map to 0 or +inf, never NaN, so the
            // tolerance filter always classifies it deterministically.
            let m = Mismatch::new([0, 0, 0], read, 0.0);
            let re = m.relative_error();
            prop_assert!(!re.is_nan());
            prop_assert!(re == 0.0 || re == f64::INFINITY);
        }
    }
}
