//! Error types for the metrics crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the metrics APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The golden and observed outputs have different lengths.
    LengthMismatch {
        /// Number of elements in the golden output.
        golden: usize,
        /// Number of elements in the observed output.
        observed: usize,
    },
    /// A slice length does not match the volume of the declared shape.
    ShapeMismatch {
        /// Volume (total element count) of the declared shape.
        expected: usize,
        /// Actual slice length.
        actual: usize,
    },
    /// A shape dimension was zero.
    EmptyShape,
    /// A fluence or flux value was not strictly positive.
    NonPositiveFluence(f64),
    /// A tolerance threshold was negative or NaN.
    InvalidThreshold(f64),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::LengthMismatch { golden, observed } => write!(
                f,
                "golden output has {golden} elements but observed output has {observed}"
            ),
            CoreError::ShapeMismatch { expected, actual } => write!(
                f,
                "shape declares {expected} elements but slice holds {actual}"
            ),
            CoreError::EmptyShape => write!(f, "output shape has a zero dimension"),
            CoreError::NonPositiveFluence(v) => {
                write!(f, "fluence must be strictly positive, got {v}")
            }
            CoreError::InvalidThreshold(v) => {
                write!(
                    f,
                    "tolerance threshold must be a non-negative number, got {v}"
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = CoreError::LengthMismatch {
            golden: 4,
            observed: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('5'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", CoreError::EmptyShape).is_empty());
    }
}
