//! Relative-error tolerance filtering.
//!
//! §II-B and §III motivate treating small output deviations as correct:
//! floating-point results have intrinsic variance, wave simulations accept
//! misfits of about 4 %, and imprecise computing tolerates much more. The
//! paper conservatively filters mismatches at **2 %** and publishes raw
//! logs so that users can apply different thresholds — hence the threshold
//! here is a parameter.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::report::ErrorReport;

/// Removes mismatches whose relative error does not exceed a threshold.
///
/// Executions left with zero mismatches after filtering are no longer
/// counted as SDCs ("we remove faulty executions where there are no
/// mismatches left after the filter", §III).
///
/// # Examples
///
/// ```
/// use radcrit_core::{filter::ToleranceFilter, compare::compare_slices,
///                    shape::OutputShape};
///
/// let golden = [1.0, 1.0];
/// let observed = [1.01, 1.50];
/// let report = compare_slices(&golden, &observed, OutputShape::d1(2))?;
/// let strict = ToleranceFilter::paper_default(); // 2 %
/// assert_eq!(strict.apply(&report).incorrect_elements(), 1);
///
/// let seismic = ToleranceFilter::new(4.0)?;      // de la Puente et al. misfit
/// assert_eq!(seismic.apply(&report).incorrect_elements(), 1);
/// # Ok::<(), radcrit_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceFilter {
    threshold_pct: f64,
}

impl ToleranceFilter {
    /// The threshold used throughout the paper: 2 %.
    pub const PAPER_THRESHOLD_PCT: f64 = 2.0;

    /// Creates a filter keeping only mismatches with relative error
    /// **strictly greater** than `threshold_pct` percent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidThreshold`] if the threshold is negative
    /// or NaN.
    pub fn new(threshold_pct: f64) -> Result<Self, CoreError> {
        if threshold_pct.is_nan() || threshold_pct < 0.0 {
            return Err(CoreError::InvalidThreshold(threshold_pct));
        }
        Ok(ToleranceFilter { threshold_pct })
    }

    /// The 2 % filter used for every "> 2 %" break-down in the paper.
    pub fn paper_default() -> Self {
        ToleranceFilter {
            threshold_pct: Self::PAPER_THRESHOLD_PCT,
        }
    }

    /// A zero-tolerance filter: every mismatch is kept. Corresponds to the
    /// "All" bars of Figs. 3, 5 and 7.
    pub fn keep_all() -> Self {
        ToleranceFilter { threshold_pct: 0.0 }
    }

    /// The threshold in percent.
    pub fn threshold_pct(&self) -> f64 {
        self.threshold_pct
    }

    /// Produces a new report containing only the mismatches that exceed
    /// the threshold.
    ///
    /// Note that with [`ToleranceFilter::keep_all`] a mismatch whose values
    /// differ but whose *relative* error is exactly `0.0` cannot exist
    /// (zero relative error means equal magnitudes), except for the
    /// `-0.0`/`+0.0` pair, which compares equal upstream and never reaches
    /// a report.
    pub fn apply(&self, report: &ErrorReport) -> ErrorReport {
        let kept = report
            .mismatches()
            .iter()
            .copied()
            .filter(|m| m.exceeds(self.threshold_pct))
            .collect();
        ErrorReport::new(report.shape(), kept)
    }

    /// Whether the execution would be dropped from the SDC count entirely
    /// (all mismatches inside tolerance).
    pub fn fully_masks(&self, report: &ErrorReport) -> bool {
        report
            .mismatches()
            .iter()
            .all(|m| !m.exceeds(self.threshold_pct))
    }
}

impl Default for ToleranceFilter {
    /// The paper's 2 % filter.
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_slices;
    use crate::shape::OutputShape;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_thresholds() {
        assert!(ToleranceFilter::new(-1.0).is_err());
        assert!(ToleranceFilter::new(f64::NAN).is_err());
        assert!(ToleranceFilter::new(0.0).is_ok());
    }

    #[test]
    fn paper_default_is_two_percent() {
        assert_eq!(ToleranceFilter::paper_default().threshold_pct(), 2.0);
        assert_eq!(ToleranceFilter::default().threshold_pct(), 2.0);
    }

    #[test]
    fn keep_all_keeps_everything_nonzero() {
        let golden = [1.0, 1.0, 1.0];
        let observed = [1.0001, 1.5, 1.0];
        let r = compare_slices(&golden, &observed, OutputShape::d1(3)).unwrap();
        assert_eq!(
            ToleranceFilter::keep_all().apply(&r).incorrect_elements(),
            2
        );
    }

    #[test]
    fn two_percent_boundary_is_strict() {
        let golden = [1.0];
        let observed = [1.02]; // exactly 2 %
        let r = compare_slices(&golden, &observed, OutputShape::d1(1)).unwrap();
        let f = ToleranceFilter::new(2.0 + 1e-9).unwrap();
        assert_eq!(f.apply(&r).incorrect_elements(), 0);
        assert!(f.fully_masks(&r));
    }

    #[test]
    fn fully_masks_detects_surviving_error() {
        let golden = [1.0, 1.0];
        let observed = [1.001, 3.0];
        let r = compare_slices(&golden, &observed, OutputShape::d1(2)).unwrap();
        assert!(!ToleranceFilter::paper_default().fully_masks(&r));
    }

    #[test]
    fn filtering_preserves_shape() {
        let golden = [1.0, 1.0];
        let observed = [1.5, 1.0];
        let shape = OutputShape::d2(1, 2);
        let r = compare_slices(&golden, &observed, shape).unwrap();
        assert_eq!(ToleranceFilter::paper_default().apply(&r).shape(), shape);
    }

    proptest! {
        /// Raising the threshold never increases the surviving mismatch count.
        #[test]
        fn filter_is_monotone(
            values in proptest::collection::vec(0.5f64..2.0, 1..32),
            t1 in 0.0f64..100.0, t2 in 0.0f64..100.0) {
            let golden = vec![1.0; values.len()];
            let r = compare_slices(&golden, &values, OutputShape::d1(values.len())).unwrap();
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let kept_lo = ToleranceFilter::new(lo).unwrap().apply(&r).incorrect_elements();
            let kept_hi = ToleranceFilter::new(hi).unwrap().apply(&r).incorrect_elements();
            prop_assert!(kept_hi <= kept_lo);
        }

        /// Filtering is idempotent.
        #[test]
        fn filter_is_idempotent(
            values in proptest::collection::vec(0.5f64..2.0, 1..32),
            t in 0.0f64..100.0) {
            let golden = vec![1.0; values.len()];
            let r = compare_slices(&golden, &values, OutputShape::d1(values.len())).unwrap();
            let f = ToleranceFilter::new(t).unwrap();
            let once = f.apply(&r);
            let twice = f.apply(&once);
            prop_assert_eq!(once, twice);
        }

        /// Every surviving mismatch really exceeds the threshold.
        #[test]
        fn survivors_exceed_threshold(
            values in proptest::collection::vec(0.5f64..2.0, 1..32),
            t in 0.0f64..100.0) {
            let golden = vec![1.0; values.len()];
            let r = compare_slices(&golden, &values, OutputShape::d1(values.len())).unwrap();
            let f = ToleranceFilter::new(t).unwrap();
            for m in f.apply(&r).mismatches() {
                prop_assert!(m.relative_error() > t);
            }
        }
    }
}
