//! Deterministic input generation following the paper's rules (§IV-D):
//!
//! * values small enough to avoid overflow but big enough to be
//!   representative;
//! * bit patterns balancing the number of 0s and 1s (a hash gives each
//!   mantissa ~50 % set bits on average);
//! * small input sizes are a subset of big input sizes — a value depends
//!   only on its *global* coordinate, never on the array size.

/// SplitMix64: a tiny, high-quality 64-bit mixer used to derive input
/// values from `(seed, index)` pairs.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic value in `[1, 2)` for `(seed, index)`: the hash fills
/// the mantissa (balanced bits), the exponent is pinned so sums and
/// products of realistic sizes cannot overflow.
#[inline]
pub fn unit_value(seed: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ index.wrapping_mul(0xD134_2543_DE82_EF95));
    // 0x3FF0... is 1.0; OR-ing 52 hash bits into the mantissa yields [1, 2).
    f64::from_bits(0x3FF0_0000_0000_0000 | (h >> 12))
}

/// A deterministic value in `[0, 1)`.
#[inline]
pub fn fraction(seed: u64, index: u64) -> f64 {
    unit_value(seed, index) - 1.0
}

/// A deterministic value in `[lo, hi)`.
#[inline]
pub fn in_range(seed: u64, index: u64, lo: f64, hi: f64) -> f64 {
    lo + fraction(seed, index) * (hi - lo)
}

/// The global coordinate stride used so that an `N × N` matrix is a
/// sub-matrix of every larger one (`N ≤ GLOBAL_SIDE`).
pub const GLOBAL_SIDE: u64 = 1 << 13;

/// Matrix element value at global coordinates `(row, col)`: a random
/// mantissa spread over four octaves (`[0.5, 8)`), approximating the
/// paper's balanced-bit inputs, which vary in magnitude while remaining
/// "small enough to avoid overflow but still big enough to be
/// representative" (§IV-D).
#[inline]
pub fn matrix_value(seed: u64, row: usize, col: usize) -> f64 {
    let idx = row as u64 * GLOBAL_SIDE + col as u64;
    let h = splitmix64(seed ^ idx.wrapping_mul(0xA24B_AED4_963E_E407));
    let octave = (h >> 60) as i32 % 4 - 1; // {-1, 0, 1, 2}
    unit_value(seed, idx) * f64::powi(2.0, octave)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_deterministic() {
        assert_eq!(unit_value(1, 42), unit_value(1, 42));
        assert_ne!(unit_value(1, 42), unit_value(1, 43));
        assert_ne!(unit_value(1, 42), unit_value(2, 42));
    }

    #[test]
    fn unit_values_in_range() {
        for i in 0..10_000 {
            let v = unit_value(7, i);
            assert!((1.0..2.0).contains(&v), "value {v} out of [1,2)");
        }
    }

    #[test]
    fn fractions_in_range() {
        for i in 0..1_000 {
            let v = fraction(3, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn in_range_respects_bounds() {
        for i in 0..1_000 {
            let v = in_range(5, i, 320.0, 340.0);
            assert!((320.0..340.0).contains(&v));
        }
    }

    #[test]
    fn bits_are_balanced() {
        // Average set-bit count of the mantissa should be ~26 of 52.
        let total: u32 = (0..10_000u64)
            .map(|i| (unit_value(11, i).to_bits() & ((1 << 52) - 1)).count_ones())
            .sum();
        let avg = f64::from(total) / 10_000.0;
        assert!((avg - 26.0).abs() < 0.5, "average set bits {avg}");
    }

    #[test]
    fn small_inputs_are_subsets_of_big_inputs() {
        // The value at (row, col) must not depend on the matrix size used.
        for &(r, c) in &[(0usize, 0usize), (5, 9), (100, 1000), (8000, 8100)] {
            let v = matrix_value(1, r, c);
            assert_eq!(v, matrix_value(1, r, c));
            assert!((0.5..8.0).contains(&v), "value {v} outside [0.5, 8)");
        }
        // Distinct coordinates give distinct values (overwhelmingly).
        assert_ne!(matrix_value(1, 3, 4), matrix_value(1, 4, 3));
    }

    #[test]
    fn matrix_values_span_several_octaves() {
        let values: Vec<f64> = (0..1000).map(|i| matrix_value(3, i / 50, i % 50)).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        assert!(lo < 1.0, "smallest octave present, got {lo}");
        assert!(hi > 4.0, "largest octave present, got {hi}");
    }
}
