//! LavaMD: particle potentials and forces over a 3-D box grid.
//!
//! The paper's N-Body / Finite-Difference-Methods representative
//! (Rodinia mini-app): a large 3-D space is divided into boxes assigned to
//! thread blocks; each particle interacts with every particle in the home
//! box and its up to 26 neighbours (§IV-B). The inner kernel follows the
//! Rodinia formulation:
//!
//! ```text
//! r2  = rA.v + rB.v − rA·rB
//! u2  = a2 · r2
//! vij = exp(−u2)             ← the exponentiation that "can turn small
//! fs  = 2 · vij                 value variations into large differences"
//! d   = rA − rB                 (§V-B)
//! fA.v += qB · vij ;  fA.{x,y,z} += qB · fs · d.{x,y,z}
//! ```
//!
//! Border boxes have fewer neighbours, producing the load imbalance of
//! Table I. The per-box output (4 values per particle) lives in a flat
//! buffer; the *logical* geometry for spatial locality is the box grid
//! itself, which is where the paper's cubic/square patterns appear.

use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::exec;
use radcrit_core::shape::{Coord, OutputShape};

use crate::input::fraction;
use crate::profile::KernelClass;
use crate::Workload;

/// Maximum particles per box the implementation supports (bounds local
/// scratch arrays).
pub const MAX_PARTICLES: usize = 192;

/// LavaMD over a `grid³` box space with `particles` particles per box.
///
/// The paper runs 100 particles per box on the Xeon Phi and 192 on the
/// K40 ("selected to best fit the hardware", §IV-C); campaign presets
/// scale these down proportionally.
#[derive(Debug)]
pub struct LavaMd {
    grid: usize,
    particles: usize,
    seed: u64,
    alpha: f64,
    rv: Vec<f64>,
    qv: Vec<f64>,
    rv_buf: Option<BufferId>,
    qv_buf: Option<BufferId>,
    fv_buf: Option<BufferId>,
}

impl LavaMd {
    /// Creates a LavaMD instance.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when `grid` is zero or
    /// `particles` is zero or exceeds [`MAX_PARTICLES`].
    pub fn new(grid: usize, particles: usize, seed: u64) -> Result<Self, AccelError> {
        if grid == 0 {
            return Err(AccelError::InvalidConfig("zero LavaMD grid".into()));
        }
        if particles == 0 || particles > MAX_PARTICLES {
            return Err(AccelError::InvalidConfig(format!(
                "particles per box must be in 1..={MAX_PARTICLES}, got {particles}"
            )));
        }
        let boxes = grid * grid * grid;
        let mut rv = Vec::with_capacity(boxes * particles * 4);
        let mut qv = Vec::with_capacity(boxes * particles);
        for p in 0..boxes * particles {
            let idx = p as u64;
            // Rodinia initializes all four rv components and the charge
            // with uniform randoms in (0, 1].
            rv.push(fraction(seed, idx * 5) + 0.1); // v
            rv.push(fraction(seed, idx * 5 + 1)); // x
            rv.push(fraction(seed, idx * 5 + 2)); // y
            rv.push(fraction(seed, idx * 5 + 3)); // z
            qv.push(fraction(seed, idx * 5 + 4) + 0.1);
        }
        Ok(LavaMd {
            grid,
            particles,
            seed,
            alpha: 0.5,
            rv,
            qv,
            rv_buf: None,
            qv_buf: None,
            fv_buf: None,
        })
    }

    /// The box-grid side length.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Particles per box.
    pub fn particles(&self) -> usize {
        self.particles
    }

    /// The input seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn box_coords(&self, b: usize) -> (usize, usize, usize) {
        let g = self.grid;
        (b % g, (b / g) % g, b / (g * g))
    }

    fn box_index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.grid + y) * self.grid + x
    }

    /// Host-side reference computation for validation (same loop order as
    /// the device kernel, so bitwise identical).
    pub fn host_reference(&self) -> Vec<f64> {
        let boxes = self.grid * self.grid * self.grid;
        let p = self.particles;
        let a2 = 2.0 * self.alpha * self.alpha;
        let mut fv = vec![0.0f64; boxes * p * 4];
        for home in 0..boxes {
            let (hx, hy, hz) = self.box_coords(home);
            for (nx, ny, nz) in neighbor_coords(hx, hy, hz, self.grid) {
                let nb = self.box_index(nx, ny, nz);
                for i in 0..p {
                    let ra = &self.rv[(home * p + i) * 4..(home * p + i) * 4 + 4];
                    let fi = (home * p + i) * 4;
                    for j in 0..p {
                        let rb = &self.rv[(nb * p + j) * 4..(nb * p + j) * 4 + 4];
                        let qb = self.qv[nb * p + j];
                        // Fused like the device FMA chain (single
                        // rounding per term).
                        let dot =
                            ra[1].mul_add(rb[1], ra[2].mul_add(rb[2], ra[3].mul_add(rb[3], 0.0)));
                        // Same association as the device kernel's
                        // `add(rav, rbv - dot)` so results match bitwise.
                        let r2 = ra[0] + (rb[0] - dot);
                        let u2 = a2 * r2;
                        let vij = (-u2).exp();
                        let fs = 2.0 * vij;
                        let dx = ra[1] - rb[1];
                        let dy = ra[2] - rb[2];
                        let dz = ra[3] - rb[3];
                        fv[fi] = qb.mul_add(vij, fv[fi]);
                        fv[fi + 1] = qb.mul_add(fs * dx, fv[fi + 1]);
                        fv[fi + 2] = qb.mul_add(fs * dy, fv[fi + 2]);
                        fv[fi + 3] = qb.mul_add(fs * dz, fv[fi + 3]);
                    }
                }
            }
        }
        fv
    }
}

/// In-bounds neighbour coordinates (including the home box), in
/// deterministic z-major order.
fn neighbor_coords(
    hx: usize,
    hy: usize,
    hz: usize,
    grid: usize,
) -> impl Iterator<Item = (usize, usize, usize)> {
    let g = grid as isize;
    let (hx, hy, hz) = (hx as isize, hy as isize, hz as isize);
    (-1..=1).flat_map(move |dz| {
        (-1..=1).flat_map(move |dy| {
            (-1..=1).filter_map(move |dx| {
                let (x, y, z) = (hx + dx, hy + dy, hz + dz);
                if x >= 0 && x < g && y >= 0 && y < g && z >= 0 && z < g {
                    Some((x as usize, y as usize, z as usize))
                } else {
                    None
                }
            })
        })
    })
}

impl TiledProgram for LavaMd {
    fn name(&self) -> &str {
        "lavamd"
    }

    fn tile_count(&self) -> usize {
        self.grid * self.grid * self.grid
    }

    fn threads_per_tile(&self) -> usize {
        // One thread per particle of the home box (Table II:
        // grid³ × #particles threads in total).
        self.particles
    }

    fn local_mem_per_tile(&self) -> usize {
        // Home rv (4 doubles/particle) + neighbour rv + neighbour charges
        // stay in local memory (§IV-B: "the home box and a neighbor box
        // are kept at all times in local memory; LavaMD stresses local
        // memory the most").
        self.particles * (4 + 4 + 1) * 8
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.rv_buf = Some(mem.alloc_init("rv", &self.rv));
        self.qv_buf = Some(mem.alloc_init("qv", &self.qv));
        self.fv_buf = Some(mem.alloc("fv", self.grid * self.grid * self.grid * self.particles * 4));
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        // Multiversioned tile body (see `Dgemm::execute_tile`): the
        // particle-pair force loop — a chain of per-op FMAs — compiles
        // to fused hardware FMAs on an AVX2 host instead of libm
        // calls, bit-identical because FMA rounds once everywhere.
        #[cfg(target_arch = "x86_64")]
        if exec::active() == exec::Isa::Avx2 {
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            return unsafe { self.tile_avx2(tile, ctx) };
        }
        self.tile_body(tile, ctx)
    }

    fn output(&self) -> BufferId {
        self.fv_buf.expect("setup ran")
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d1(self.grid * self.grid * self.grid * self.particles * 4)
    }
}

impl LavaMd {
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tile_avx2(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        self.tile_body(tile, ctx)
    }

    #[inline(always)]
    fn tile_body(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        let p = self.particles;
        let a2 = 2.0 * self.alpha * self.alpha;
        let home = tile.index();
        let (hx, hy, hz) = self.box_coords(home);
        let rv_buf = self.rv_buf.expect("setup ran");
        let qv_buf = self.qv_buf.expect("setup ran");
        let fv_buf = self.fv_buf.expect("setup ran");

        let mut ra = vec![0.0f64; p * 4];
        ctx.load(rv_buf, home * p * 4, &mut ra)?;
        let mut fa = vec![0.0f64; p * 4];

        let mut rb = vec![0.0f64; p * 4];
        let mut qb = vec![0.0f64; p];
        for (nx, ny, nz) in neighbor_coords(hx, hy, hz, self.grid) {
            let nb = self.box_index(nx, ny, nz);
            ctx.load(rv_buf, nb * p * 4, &mut rb)?;
            ctx.load(qv_buf, nb * p, &mut qb)?;
            for i in 0..p {
                let (rav, rax, ray, raz) = (ra[i * 4], ra[i * 4 + 1], ra[i * 4 + 2], ra[i * 4 + 3]);
                for j in 0..p {
                    let (rbv, rbx, rby, rbz) =
                        (rb[j * 4], rb[j * 4 + 1], rb[j * 4 + 2], rb[j * 4 + 3]);
                    let mut dot = ctx.fma(raz, rbz, 0.0);
                    dot = ctx.fma(ray, rby, dot);
                    dot = ctx.fma(rax, rbx, dot);
                    let r2 = ctx.add(rav, rbv - dot);
                    let u2 = ctx.mul(a2, r2);
                    let vij = ctx.exp(-u2);
                    let fs = 2.0 * vij;
                    let dx = rax - rbx;
                    let dy = ray - rby;
                    let dz = raz - rbz;
                    let q = qb[j];
                    fa[i * 4] = ctx.fma(q, vij, fa[i * 4]);
                    fa[i * 4 + 1] = ctx.fma(q, fs * dx, fa[i * 4 + 1]);
                    fa[i * 4 + 2] = ctx.fma(q, fs * dy, fa[i * 4 + 2]);
                    fa[i * 4 + 3] = ctx.fma(q, fs * dz, fa[i * 4 + 3]);
                }
            }
        }
        ctx.store(fv_buf, home * p * 4, &fa)
    }
}

impl Workload for LavaMd {
    fn logical_shape(&self) -> OutputShape {
        OutputShape::d3(self.grid, self.grid, self.grid)
    }

    fn error_coord(&self, idx: usize) -> Coord {
        let b = idx / (self.particles * 4);
        let (x, y, z) = self.box_coords(b);
        [x, y, z]
    }

    fn class(&self) -> KernelClass {
        KernelClass::LAVAMD
    }

    fn input_label(&self) -> String {
        format!("{}", self.grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::config::DeviceConfig;
    use radcrit_accel::engine::Engine;
    use radcrit_accel::strike::{StrikeSpec, StrikeTarget};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_config() {
        assert!(LavaMd::new(0, 10, 1).is_err());
        assert!(LavaMd::new(3, 0, 1).is_err());
        assert!(LavaMd::new(3, MAX_PARTICLES + 1, 1).is_err());
        assert!(LavaMd::new(3, 10, 1).is_ok());
    }

    #[test]
    fn neighbor_counts_show_load_imbalance() {
        // Corner box: 8 neighbours incl. itself; interior box: 27.
        let corner = neighbor_coords(0, 0, 0, 4).count();
        let interior = neighbor_coords(1, 1, 1, 4).count();
        assert_eq!(corner, 8);
        assert_eq!(interior, 27);
    }

    #[test]
    fn golden_matches_host_reference_bitwise() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = LavaMd::new(3, 8, 5).unwrap();
        let golden = engine.golden(&mut k).unwrap();
        assert_eq!(golden.output, k.host_reference());
    }

    #[test]
    fn potentials_are_positive() {
        let k = LavaMd::new(2, 6, 9).unwrap();
        let fv = k.host_reference();
        // The v component (every 4th from 0) accumulates q·exp(−u2) > 0.
        for i in (0..fv.len()).step_by(4) {
            assert!(fv[i] > 0.0, "potential at {i} must be positive");
        }
    }

    #[test]
    fn sfu_strike_explodes_relative_error() {
        // §V-B/§V-E: a corrupted exp() argument turns small variations
        // into enormous relative errors.
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = LavaMd::new(3, 8, 5).unwrap();
        let golden = k.host_reference();
        // The sign of the exp argument depends on the struck pair, so at
        // least one of a handful of op indices must hit a pair whose
        // corrupted argument becomes hugely positive and explodes.
        let mut exploded = false;
        for op_index in [0u64, 7, 19, 31, 47, 63] {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let s = StrikeSpec::new(
                13, // interior box of a 3x3x3 grid
                StrikeTarget::Sfu {
                    // Corrupted range reduction: exp(-32x) explodes for
                    // the common negative arguments.
                    scale: -32.0,
                    op_index,
                },
            );
            let out = engine.run(&mut k, &s, &mut rng).unwrap();
            let max_rel = (0..golden.len())
                .filter(|&i| out.output[i] != golden[i])
                .map(|i| ((out.output[i] - golden[i]) / golden[i]).abs() * 100.0)
                .fold(0.0f64, f64::max);
            if max_rel > 1000.0 || max_rel.is_nan() {
                exploded = true;
                break;
            }
        }
        assert!(
            exploded,
            "exp-argument corruption must explode for some pair"
        );
    }

    #[test]
    fn error_coords_map_to_box_grid() {
        let k = LavaMd::new(4, 10, 1).unwrap();
        assert_eq!(k.logical_shape(), OutputShape::d3(4, 4, 4));
        // First element of box (1, 0, 0) — boxes are x-major.
        assert_eq!(k.error_coord(40), [1, 0, 0]);
        // First element of box (0, 1, 0).
        assert_eq!(k.error_coord(4 * 40), [0, 1, 0]);
        // First element of box (0, 0, 1).
        assert_eq!(k.error_coord(16 * 40), [0, 0, 1]);
    }

    #[test]
    fn thread_count_matches_table_two() {
        let k = LavaMd::new(4, 25, 1).unwrap();
        assert_eq!(k.total_threads(), 4 * 4 * 4 * 25);
    }
}
