//! HotSpot: iterative 2-D thermal simulation (Rodinia).
//!
//! The paper's Structured Grid representative: at each iteration every
//! cell's temperature is updated from its own temperature, its four
//! neighbours and the local power input (§IV-B). The update is a
//! contraction: any injected perturbation is averaged down each following
//! iteration, which is why the paper finds HotSpot "intrinsically robust"
//! with mean relative errors below 25 % and 80–95 % of faulty runs inside
//! the 2 % tolerance (§V-C).
//!
//! The explicit update per cell is
//!
//! ```text
//! t' = t + cap·(power + cx·(e + w − 2t) + cy·(n + s − 2t) + cz·(amb − t))
//! ```
//!
//! with adiabatic (clamped) borders; `cx + cy < ¼` keeps the explicit
//! scheme stable. State is double-buffered; tiles are row blocks within
//! one iteration.

use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::exec;
use radcrit_core::shape::{Coord, OutputShape};

use crate::input::in_range;
use crate::profile::KernelClass;
use crate::Workload;

/// Rows per tile.
pub const BLOCK_ROWS: usize = 8;

/// Thermal coupling east/west.
const CX: f64 = 0.115;
/// Thermal coupling north/south.
const CY: f64 = 0.115;
/// Coupling to the ambient (heat sink). Strong enough that injected
/// perturbations damp out within a few hundred iterations — the
/// "intrinsic robustness" of §V-C.
const CZ: f64 = 0.01;
/// Integration gain (`step / capacitance`).
const CAP: f64 = 1.0;
/// Ambient temperature (°C).
const AMB: f64 = 80.0;

/// The HotSpot thermal stencil on a `rows × cols` grid for `iterations`
/// steps.
#[derive(Debug)]
pub struct HotSpot {
    rows: usize,
    cols: usize,
    iterations: usize,
    seed: u64,
    temp: Vec<f64>,
    power: Vec<f64>,
    buf_a: Option<BufferId>,
    buf_b: Option<BufferId>,
    buf_power: Option<BufferId>,
}

impl HotSpot {
    /// Creates a HotSpot instance with deterministic initial temperatures
    /// (~80–95 °C) and power densities.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] unless `rows` is a positive
    /// multiple of [`BLOCK_ROWS`], `cols > 0` and `iterations > 0`.
    pub fn new(rows: usize, cols: usize, iterations: usize, seed: u64) -> Result<Self, AccelError> {
        if rows == 0 || !rows.is_multiple_of(BLOCK_ROWS) {
            return Err(AccelError::InvalidConfig(format!(
                "rows {rows} must be a positive multiple of {BLOCK_ROWS}"
            )));
        }
        if cols == 0 {
            return Err(AccelError::InvalidConfig("zero columns".into()));
        }
        if iterations == 0 {
            return Err(AccelError::InvalidConfig("zero iterations".into()));
        }
        let n = rows * cols;
        let temp = (0..n)
            .map(|i| in_range(seed, i as u64, 80.0, 95.0))
            .collect();
        let power = (0..n)
            .map(|i| in_range(seed ^ 0x50, i as u64, 0.0, 0.05))
            .collect();
        Ok(HotSpot {
            rows,
            cols,
            iterations,
            seed,
            temp,
            power,
            buf_a: None,
            buf_b: None,
            buf_power: None,
        })
    }

    /// Creates a HotSpot instance from explicit initial temperatures and
    /// power densities (for resuming states or controlled experiments).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] on bad geometry or when the
    /// slices do not hold `rows × cols` elements.
    pub fn with_state(
        rows: usize,
        cols: usize,
        iterations: usize,
        temp: Vec<f64>,
        power: Vec<f64>,
    ) -> Result<Self, AccelError> {
        let mut k = Self::new(rows, cols, iterations, 0)?;
        if temp.len() != rows * cols || power.len() != rows * cols {
            return Err(AccelError::InvalidConfig(format!(
                "state must hold {} elements",
                rows * cols
            )));
        }
        k.temp = temp;
        k.power = power;
        Ok(k)
    }

    /// The initial temperature field.
    pub fn initial_temperatures(&self) -> &[f64] {
        &self.temp
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stencil iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The input seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn tiles_per_step(&self) -> usize {
        self.rows / BLOCK_ROWS
    }

    /// Host-side reference (same arithmetic order as the device kernel).
    pub fn host_reference(&self) -> Vec<f64> {
        let (r, c) = (self.rows, self.cols);
        let mut cur = self.temp.clone();
        let mut next = self.temp.clone();
        for _ in 0..self.iterations {
            for i in 0..r {
                let up = if i == 0 { i } else { i - 1 };
                let dn = if i == r - 1 { i } else { i + 1 };
                for j in 0..c {
                    let lf = if j == 0 { j } else { j - 1 };
                    let rt = if j == c - 1 { j } else { j + 1 };
                    let t = cur[i * c + j];
                    let horiz = CX * (cur[i * c + rt] + cur[i * c + lf] - 2.0 * t);
                    let vert = CY * (cur[up * c + j] + cur[dn * c + j] - 2.0 * t);
                    let sink = CZ * (AMB - t);
                    // Fused like the device FMA (single rounding).
                    next[i * c + j] = CAP.mul_add(self.power[i * c + j] + horiz + vert + sink, t);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

impl TiledProgram for HotSpot {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn tile_count(&self) -> usize {
        self.tiles_per_step() * self.iterations
    }

    fn tiles_per_launch(&self) -> usize {
        // One stencil iteration = one kernel launch (Table II: #threads =
        // #cells).
        self.tiles_per_step()
    }

    fn threads_per_tile(&self) -> usize {
        // One thread per cell (Table II: #threads = #cells) per tile.
        BLOCK_ROWS * self.cols
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.buf_a = Some(mem.alloc_init("temp_a", &self.temp));
        self.buf_b = Some(mem.alloc_init("temp_b", &self.temp));
        self.buf_power = Some(mem.alloc_init("power", &self.power));
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        // Multiversioned tile body (see `Dgemm::execute_tile`): the
        // stencil arithmetic and halo loads compile as one AVX2+FMA
        // region on hosts that have it, bit-identical to the portable
        // copy.
        #[cfg(target_arch = "x86_64")]
        if exec::active() == exec::Isa::Avx2 {
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            return unsafe { self.tile_avx2(tile, ctx) };
        }
        self.tile_body(tile, ctx)
    }

    fn output(&self) -> BufferId {
        // After an even number of iterations the final state is back in A.
        if self.iterations.is_multiple_of(2) {
            self.buf_a.expect("setup")
        } else {
            self.buf_b.expect("setup")
        }
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d2(self.rows, self.cols)
    }
}

impl HotSpot {
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tile_avx2(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        self.tile_body(tile, ctx)
    }

    #[inline(always)]
    fn tile_body(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        let (r, c) = (self.rows, self.cols);
        let tps = self.tiles_per_step();
        let step = tile.index() / tps;
        let blk = tile.index() % tps;
        let (src, dst) = if step.is_multiple_of(2) {
            (self.buf_a.expect("setup"), self.buf_b.expect("setup"))
        } else {
            (self.buf_b.expect("setup"), self.buf_a.expect("setup"))
        };
        let power = self.buf_power.expect("setup");

        let row0 = blk * BLOCK_ROWS;
        // Load BLOCK_ROWS + 2 halo rows (clamped at grid borders).
        let halo_top = row0.saturating_sub(1);
        let halo_bot = (row0 + BLOCK_ROWS).min(r - 1);
        let span = halo_bot - halo_top + 1;
        let mut rows_in = vec![0.0f64; span * c];
        ctx.load(src, halo_top * c, &mut rows_in)?;
        let mut pw = vec![0.0f64; BLOCK_ROWS * c];
        ctx.load(power, row0 * c, &mut pw)?;

        let at = |i: usize, j: usize, rows_in: &[f64]| rows_in[(i - halo_top) * c + j];

        let mut out = vec![0.0f64; c];
        for bi in 0..BLOCK_ROWS {
            let i = row0 + bi;
            let up = if i == 0 { i } else { i - 1 };
            let dn = if i == r - 1 { i } else { i + 1 };
            for j in 0..c {
                let lf = if j == 0 { j } else { j - 1 };
                let rt = if j == c - 1 { j } else { j + 1 };
                let t = at(i, j, &rows_in);
                let h_lap = ctx.op(at(i, rt, &rows_in) + at(i, lf, &rows_in) - 2.0 * t);
                let horiz = ctx.mul(CX, h_lap);
                let v_lap = ctx.op(at(up, j, &rows_in) + at(dn, j, &rows_in) - 2.0 * t);
                let vert = ctx.mul(CY, v_lap);
                let sink = ctx.mul(CZ, AMB - t);
                let delta = ctx.op(pw[bi * c + j] + horiz + vert + sink);
                out[j] = ctx.fma(CAP, delta, t);
            }
            ctx.store(dst, i * c, &out)?;
        }
        Ok(())
    }
}

impl Workload for HotSpot {
    fn logical_shape(&self) -> OutputShape {
        OutputShape::d2(self.rows, self.cols)
    }

    fn error_coord(&self, idx: usize) -> Coord {
        [idx / self.cols, idx % self.cols, 0]
    }

    fn class(&self) -> KernelClass {
        KernelClass::HOTSPOT
    }

    fn input_label(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::config::DeviceConfig;
    use radcrit_accel::engine::Engine;
    use radcrit_accel::strike::{StrikeSpec, StrikeTarget};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_config() {
        assert!(HotSpot::new(0, 8, 4, 1).is_err());
        assert!(HotSpot::new(12, 8, 4, 1).is_err()); // not multiple of 8
        assert!(HotSpot::new(16, 0, 4, 1).is_err());
        assert!(HotSpot::new(16, 8, 0, 1).is_err());
        assert!(HotSpot::new(16, 8, 4, 1).is_ok());
    }

    #[test]
    fn golden_matches_host_reference_bitwise() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        for iters in [1, 2, 5] {
            let mut k = HotSpot::new(16, 16, iters, 3).unwrap();
            let golden = engine.golden(&mut k).unwrap();
            assert_eq!(golden.output, k.host_reference(), "iters={iters}");
        }
    }

    #[test]
    fn temperatures_stay_bounded() {
        // The contraction keeps temperatures near the initial band.
        let k = HotSpot::new(16, 16, 50, 3).unwrap();
        let out = k.host_reference();
        for &t in &out {
            assert!((70.0..110.0).contains(&t), "temperature {t} diverged");
        }
    }

    #[test]
    fn injected_perturbation_dissipates() {
        // §V-C: "errors will eventually dissipate as the result tend to
        // reach an equilibrium". Perturb one cell mid-run and watch the
        // maximum deviation shrink over subsequent iterations.
        let mk = || HotSpot::new(16, 16, 1, 3).unwrap();
        let mut clean = mk().host_reference();
        let mut dirty = clean.clone();
        dirty[8 * 16 + 8] += 10.0;
        // Advance both states manually via fresh kernels seeded with the
        // states (reuse the reference loop by setting temp directly).
        let mut k_clean = mk();
        let mut k_dirty = mk();
        k_clean.temp = clean.clone();
        k_dirty.temp = dirty.clone();
        let mut max_dev = 10.0f64;
        for _ in 0..5 {
            clean = k_clean.host_reference();
            dirty = k_dirty.host_reference();
            let dev = clean
                .iter()
                .zip(&dirty)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(dev < max_dev, "deviation must shrink: {dev} !< {max_dev}");
            max_dev = dev;
            k_clean.temp = clean.clone();
            k_dirty.temp = dirty.clone();
        }
        assert!(max_dev < 5.0, "10-degree spike must halve within 5 iters");
    }

    #[test]
    fn l2_strike_spreads_as_square_with_small_errors() {
        let engine = Engine::new(DeviceConfig::xeon_phi_3120a());
        let mut k = HotSpot::new(32, 32, 12, 3).unwrap();
        let golden = k.host_reference();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Flip a high mantissa bit early in the run.
        let s = StrikeSpec::new(4, StrikeTarget::L2 { mask: 1 << 51 });
        let out = engine.run(&mut k, &s, &mut rng).unwrap();
        assert!(out.strike_delivered);
        let diffs: Vec<usize> = (0..golden.len())
            .filter(|&i| out.output[i] != golden[i])
            .collect();
        if diffs.len() > 4 {
            // The corruption diffused to a 2-D neighbourhood.
            let rows: std::collections::HashSet<_> = diffs.iter().map(|i| i / 32).collect();
            let cols: std::collections::HashSet<_> = diffs.iter().map(|i| i % 32).collect();
            assert!(rows.len() > 1 && cols.len() > 1, "2-D spread expected");
            // And the relative errors are small (contraction).
            let max_rel = diffs
                .iter()
                .map(|&i| ((out.output[i] - golden[i]) / golden[i]).abs() * 100.0)
                .fold(0.0f64, f64::max);
            assert!(max_rel < 50.0, "stencil must attenuate, got {max_rel}%");
        }
    }

    #[test]
    fn thread_count_matches_table_two() {
        let k = HotSpot::new(32, 32, 4, 1).unwrap();
        // #threads = #cells per iteration.
        assert_eq!(k.tiles_per_step() * k.threads_per_tile(), 32 * 32);
    }
}
