//! # radcrit-kernels
//!
//! The four workloads of *"Radiation-Induced Error Criticality in Modern
//! HPC Parallel Accelerators"* (Oliveira et al., HPCA 2017), implemented
//! as [`radcrit_accel::program::TiledProgram`]s:
//!
//! * [`dgemm::Dgemm`] — dense matrix multiplication (Dense Linear
//!   Algebra; compute-bound, balanced, regular);
//! * [`lavamd::LavaMd`] — particle potentials over a 3-D box grid via the
//!   Rodinia LavaMD formulation (N-Body / FDM; memory-bound, imbalanced,
//!   regular);
//! * [`hotspot::HotSpot`] — the Rodinia 2-D thermal stencil (Structured
//!   Grid; memory-bound, balanced, regular);
//! * [`shallow::ShallowWater`] — a conservative shallow-water solver with
//!   a circular-dam-break workload and activity-driven tiling, the
//!   open substitute for the proprietary DOE CLAMR mini-app
//!   (fluid dynamics; compute-bound, imbalanced, irregular).
//!
//! Each kernel also implements [`Workload`], which adds the logical
//! output geometry used by the spatial-locality metric and the Table I/II
//! classification metadata.
//!
//! [`pathological::Pathological`] is a fifth, diagnostic workload that
//! hangs or panics on demand; the campaign runner's watchdog and panic
//! capture are exercised against it.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod dgemm;
pub mod hotspot;
pub mod input;
pub mod lavamd;
pub mod pathological;
pub mod profile;
pub mod shallow;

use radcrit_accel::program::TiledProgram;
use radcrit_core::shape::{Coord, OutputShape};

pub use profile::{Bound, KernelClass, LoadBalance, MemoryAccess};

/// A paper workload: a tiled program plus the metadata the criticality
/// analysis needs (logical output geometry and kernel classification).
pub trait Workload: TiledProgram {
    /// The coordinate space the spatial-locality classifier operates in
    /// (e.g. the `G × G × G` box grid for LavaMD, the matrix for DGEMM).
    fn logical_shape(&self) -> OutputShape;

    /// Maps a flat output-element index to its logical coordinate.
    fn error_coord(&self, idx: usize) -> Coord;

    /// Table I classification of this kernel.
    fn class(&self) -> KernelClass;

    /// A short label of the input size (e.g. `"1024x1024"`, `"13"`).
    fn input_label(&self) -> String;

    /// Total threads instantiated (Table II's `#Threads`).
    fn total_threads(&self) -> usize {
        self.tile_count() * self.threads_per_tile()
    }

    /// The workload's identity as structured event fields, for the
    /// observability layer's campaign header events: kernel name, input
    /// label, logical output dimensions, tile geometry and thread count.
    fn obs_fields(&self) -> Vec<(String, radcrit_obs::FieldValue)> {
        use radcrit_obs::FieldValue;
        let dims = self.logical_shape().dims();
        vec![
            ("kernel".to_owned(), FieldValue::Str(self.name().to_owned())),
            ("input".to_owned(), FieldValue::Str(self.input_label())),
            (
                "dims".to_owned(),
                FieldValue::Arr(dims.iter().map(|&d| d as u64).collect()),
            ),
            (
                "tiles".to_owned(),
                FieldValue::U64(self.tile_count() as u64),
            ),
            (
                "threads_per_tile".to_owned(),
                FieldValue::U64(self.threads_per_tile() as u64),
            ),
            (
                "threads".to_owned(),
                FieldValue::U64(self.total_threads() as u64),
            ),
        ]
    }
}
