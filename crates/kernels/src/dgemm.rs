//! DGEMM: dense double-precision matrix multiplication.
//!
//! The paper's representative of Dense Linear Algebra: compute-bound,
//! statically partitioned, regular/coalesced access (Table I), `O(N³)`
//! compute over `O(N²)` space, and the cornerstone of Linpack (§IV-B).
//!
//! The implementation is a blocked `C = A × B` with 16×16 output tiles:
//! each tile streams 16×16 panels of `A` and `B` through the cache
//! hierarchy and accumulates through the instrumented FMA, so that
//!
//! * an L2/L1 strike on a panel of `B` corrupts a (partial) column of `C`
//!   (a *line* error), on `A` a row;
//! * a register/FPU strike corrupts one in-flight partial product (a
//!   *single* error whose relative magnitude is diluted by the remaining
//!   `N − k` accumulations);
//! * a scheduler strike corrupts a whole 16×16 block (*square*).

use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::exec;
use radcrit_core::shape::{Coord, OutputShape};

use crate::input::matrix_value;
use crate::profile::KernelClass;
use crate::Workload;

/// Output-tile side length (threads compute 16 elements each, giving the
/// paper's `side² / 16` thread count, Table II).
pub const BLOCK: usize = 16;

/// Blocked dense matrix multiplication `C = A × B` on `N × N` doubles.
///
/// # Examples
///
/// ```
/// use radcrit_accel::{config::DeviceConfig, engine::Engine};
/// use radcrit_kernels::dgemm::Dgemm;
///
/// let engine = Engine::new(DeviceConfig::kepler_k40());
/// let mut kernel = Dgemm::new(32, 1)?;
/// let golden = engine.golden(&mut kernel).map_err(|e| e.to_string())?;
/// assert_eq!(golden.output.len(), 32 * 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Dgemm {
    n: usize,
    seed: u64,
    a: Vec<f64>,
    b: Vec<f64>,
    a_buf: Option<BufferId>,
    b_buf: Option<BufferId>,
    c_buf: Option<BufferId>,
}

impl Dgemm {
    /// Creates a DGEMM of side `n` with deterministic inputs derived from
    /// `seed` (§IV-D input rules: bounded values, balanced bits, smaller
    /// inputs are subsets of larger ones).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] unless `n` is a positive
    /// multiple of [`BLOCK`].
    pub fn new(n: usize, seed: u64) -> Result<Self, AccelError> {
        if n == 0 || !n.is_multiple_of(BLOCK) {
            return Err(AccelError::InvalidConfig(format!(
                "DGEMM side {n} must be a positive multiple of {BLOCK}"
            )));
        }
        let mut a = Vec::with_capacity(n * n);
        let mut b = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                a.push(matrix_value(seed, i, j));
                b.push(matrix_value(seed ^ 0xB, i, j));
            }
        }
        Ok(Dgemm {
            n,
            seed,
            a,
            b,
            a_buf: None,
            b_buf: None,
            c_buf: None,
        })
    }

    /// The matrix side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The input seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Host-side reference multiplication, for validating the simulated
    /// golden output in tests. Accumulates in the same blocked order as
    /// the device kernel so results match bit for bit.
    pub fn host_reference(&self) -> Vec<f64> {
        let n = self.n;
        let grid = n / BLOCK;
        let mut c = vec![0.0; n * n];
        for bi in 0..grid {
            for bj in 0..grid {
                let mut acc = [[0.0f64; BLOCK]; BLOCK];
                for kb in 0..grid {
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let i = bi * BLOCK + r;
                        for k in 0..BLOCK {
                            let kk = kb * BLOCK + k;
                            let aval = self.a[i * n + kk];
                            for (cc, slot) in accr.iter_mut().enumerate() {
                                let j = bj * BLOCK + cc;
                                // Fused like the device FMA (single rounding).
                                *slot = aval.mul_add(self.b[kk * n + j], *slot);
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let i = bi * BLOCK + r;
                    c[i * n + bj * BLOCK..i * n + bj * BLOCK + BLOCK].copy_from_slice(accr);
                }
            }
        }
        c
    }
}

impl TiledProgram for Dgemm {
    fn name(&self) -> &str {
        "dgemm"
    }

    fn tile_count(&self) -> usize {
        let grid = self.n / BLOCK;
        grid * grid
    }

    fn threads_per_tile(&self) -> usize {
        // side²/16 threads in total (Table II): 16 threads per 256-element
        // output tile.
        BLOCK * BLOCK / 16
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.a_buf = Some(mem.alloc_init("A", &self.a));
        self.b_buf = Some(mem.alloc_init("B", &self.b));
        self.c_buf = Some(mem.alloc("C", self.n * self.n));
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        // Multiversioned tile body: on an AVX2 host the whole body —
        // row loads, the `fma_row` inner product, the C store —
        // compiles as one AVX2+FMA region (fused hardware FMAs, the
        // cache way scan and window copies inlined), bit-identical to
        // the portable copy because FMA rounds once on every lowering.
        #[cfg(target_arch = "x86_64")]
        if exec::active() == exec::Isa::Avx2 {
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            return unsafe { self.tile_avx2(tile, ctx) };
        }
        self.tile_body(tile, ctx)
    }

    fn output(&self) -> BufferId {
        self.c_buf.expect("setup ran")
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d2(self.n, self.n)
    }
}

impl Dgemm {
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tile_avx2(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        self.tile_body(tile, ctx)
    }

    #[inline(always)]
    fn tile_body(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        let n = self.n;
        let grid = n / BLOCK;
        let t = tile.index();
        let (bi, bj) = (t / grid, t % grid);
        let a_buf = self.a_buf.expect("setup ran");
        let b_buf = self.b_buf.expect("setup ran");
        let c_buf = self.c_buf.expect("setup ran");

        let mut a_blk = [[0.0f64; BLOCK]; BLOCK];
        let mut b_blk = [[0.0f64; BLOCK]; BLOCK];
        let mut acc = [[0.0f64; BLOCK]; BLOCK];

        for kb in 0..grid {
            // Row r of the A block is A[bi*BLOCK + r][kb*BLOCK ..]; row k
            // of the B block is B[kb*BLOCK + k][bj*BLOCK ..] — both are
            // `n`-strided row sets, loaded in one bulk call each.
            ctx.load_rows(
                a_buf,
                (bi * BLOCK) * n + kb * BLOCK,
                n,
                BLOCK,
                a_blk.as_flattened_mut(),
            )?;
            ctx.load_rows(
                b_buf,
                (kb * BLOCK) * n + bj * BLOCK,
                n,
                BLOCK,
                b_blk.as_flattened_mut(),
            )?;
            ctx.fma_block(&a_blk, &b_blk, &mut acc);
        }

        for (r, accr) in acc.iter().enumerate() {
            let i = bi * BLOCK + r;
            ctx.store(c_buf, i * n + bj * BLOCK, accr)?;
        }
        Ok(())
    }
}

impl Workload for Dgemm {
    fn logical_shape(&self) -> OutputShape {
        OutputShape::d2(self.n, self.n)
    }

    fn error_coord(&self, idx: usize) -> Coord {
        [idx / self.n, idx % self.n, 0]
    }

    fn class(&self) -> KernelClass {
        KernelClass::DGEMM
    }

    fn input_label(&self) -> String {
        format!("{0}x{0}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::config::DeviceConfig;
    use radcrit_accel::engine::Engine;
    use radcrit_accel::strike::{StrikeSpec, StrikeTarget};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_sizes() {
        assert!(Dgemm::new(0, 1).is_err());
        assert!(Dgemm::new(17, 1).is_err());
        assert!(Dgemm::new(32, 1).is_ok());
    }

    #[test]
    fn golden_matches_host_reference_bitwise() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = Dgemm::new(32, 7).unwrap();
        let golden = engine.golden(&mut k).unwrap();
        assert_eq!(golden.output, k.host_reference());
    }

    #[test]
    fn golden_identical_across_devices() {
        // Both devices execute the same arithmetic in the same order.
        let mut k = Dgemm::new(32, 7).unwrap();
        let g1 = Engine::new(DeviceConfig::kepler_k40())
            .golden(&mut k)
            .unwrap();
        let g2 = Engine::new(DeviceConfig::xeon_phi_3120a())
            .golden(&mut k)
            .unwrap();
        assert_eq!(g1.output, g2.output);
    }

    #[test]
    fn small_input_is_subset_of_large() {
        let small = Dgemm::new(16, 3).unwrap();
        let large = Dgemm::new(32, 3).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(small.a[i * 16 + j], large.a[i * 32 + j]);
                assert_eq!(small.b[i * 16 + j], large.b[i * 32 + j]);
            }
        }
    }

    #[test]
    fn thread_count_matches_table_two() {
        let k = Dgemm::new(64, 1).unwrap();
        // side²/16 (Table II).
        assert_eq!(k.total_threads(), 64 * 64 / 16);
    }

    #[test]
    fn fpu_strike_produces_single_diluted_error() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = Dgemm::new(32, 7).unwrap();
        let golden = k.host_reference();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Corrupt a low mantissa bit of an early partial product.
        let s = StrikeSpec::new(
            1,
            StrikeTarget::Fpu {
                mask: 1 << 20,
                op_index: 100,
            },
        );
        let out = engine.run(&mut k, &s, &mut rng).unwrap();
        let diffs: Vec<usize> = (0..golden.len())
            .filter(|&i| out.output[i] != golden[i])
            .collect();
        assert_eq!(diffs.len(), 1, "one corrupted element");
        let i = diffs[0];
        let rel = ((out.output[i] - golden[i]) / golden[i]).abs() * 100.0;
        assert!(
            rel < 1.0,
            "low mantissa flip diluted by accumulation: {rel}%"
        );
    }

    #[test]
    fn l2_input_strike_produces_partial_line() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = Dgemm::new(32, 7).unwrap();
        let golden = k.host_reference();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let s = StrikeSpec::new(1, StrikeTarget::L2 { mask: 1 << 61 });
        let out = engine.run(&mut k, &s, &mut rng).unwrap();
        assert!(out.strike_delivered, "tile 0 populated the cache");
        let diffs: Vec<usize> = (0..golden.len())
            .filter(|&i| out.output[i] != golden[i])
            .collect();
        // A corrupted element of A affects (part of) a row of C, of B a
        // column; either way all corrupted elements share one axis value
        // or the strike hit C's own line.
        if diffs.len() > 1 {
            let rows: std::collections::HashSet<_> = diffs.iter().map(|i| i / 32).collect();
            let cols: std::collections::HashSet<_> = diffs.iter().map(|i| i % 32).collect();
            assert!(
                rows.len() == 1 || cols.len() == 1,
                "expected a line pattern, got {} rows x {} cols",
                rows.len(),
                cols.len()
            );
        }
    }

    #[test]
    fn error_coords_are_row_col() {
        let k = Dgemm::new(32, 1).unwrap();
        assert_eq!(k.error_coord(0), [0, 0, 0]);
        assert_eq!(k.error_coord(33), [1, 1, 0]);
        assert_eq!(k.logical_shape(), OutputShape::d2(32, 32));
    }
}
