//! A deliberately misbehaving workload for runner-resilience tests.
//!
//! Real beam campaigns wedge: §II-A counts hangs as first-class outcomes,
//! and a reproduction of the campaign infrastructure needs a way to
//! provoke them on demand. [`Pathological`] behaves like a tiny
//! element-wise kernel for its first `after` executions (so the golden
//! run always succeeds), then either hangs inside `execute_tile` or
//! panics, depending on its [`Failure`] mode. The campaign runner's
//! watchdog and panic capture are tested against it.

use std::time::{Duration, Instant};

use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::shape::{Coord, OutputShape};
use serde::{Deserialize, Serialize};

use crate::profile::KernelClass;
use crate::Workload;

/// How long a hanging execution spins before giving up on its own.
///
/// The escape hatch keeps abandoned worker threads from outliving a test
/// process; any watchdog deadline well below this still observes a hang.
pub const HANG_ESCAPE: Duration = Duration::from_secs(20);

/// What a [`Pathological`] kernel does once its healthy executions are
/// used up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Failure {
    /// Spin inside `execute_tile` (bounded by [`HANG_ESCAPE`]).
    Hang,
    /// Panic inside `execute_tile`.
    Panic,
}

/// An element-wise doubling kernel that misbehaves after `after`
/// successful executions *of the same instance*.
///
/// Each campaign worker builds its own instance, so with `after = 1` a
/// worker's first injection runs normally and every later one triggers
/// the failure — while the separately-built golden instance, which only
/// executes once, stays healthy.
#[derive(Debug)]
pub struct Pathological {
    n: usize,
    after: usize,
    mode: Failure,
    executions: usize,
    input: Vec<f64>,
    in_buf: Option<BufferId>,
    out_buf: Option<BufferId>,
}

impl Pathological {
    /// Creates a pathological kernel over `n` output elements that fails
    /// from execution `after + 1` onward.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when `n` is zero or `after`
    /// is zero (the golden execution must succeed).
    pub fn new(n: usize, after: usize, mode: Failure) -> Result<Self, AccelError> {
        if n == 0 {
            return Err(AccelError::InvalidConfig(
                "pathological kernel needs at least one element".into(),
            ));
        }
        if after == 0 {
            return Err(AccelError::InvalidConfig(
                "pathological kernel needs after >= 1 so the golden run completes".into(),
            ));
        }
        Ok(Pathological {
            n,
            after,
            mode,
            executions: 0,
            input: (0..n).map(|i| i as f64 + 1.0).collect(),
            in_buf: None,
            out_buf: None,
        })
    }

    /// How many times this instance has started executing.
    pub fn executions(&self) -> usize {
        self.executions
    }
}

impl TiledProgram for Pathological {
    fn name(&self) -> &str {
        "pathological"
    }

    fn tile_count(&self) -> usize {
        1
    }

    fn threads_per_tile(&self) -> usize {
        self.n
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.executions += 1;
        self.in_buf = Some(mem.alloc_init("in", &self.input));
        self.out_buf = Some(mem.alloc("out", self.n));
        Ok(())
    }

    fn execute_tile(&mut self, _tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        if self.executions > self.after {
            match self.mode {
                Failure::Hang => {
                    let t0 = Instant::now();
                    while t0.elapsed() < HANG_ESCAPE {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Failure::Panic => {
                    panic!(
                        "pathological kernel panicked on execution {}",
                        self.executions
                    );
                }
            }
        }
        let in_buf = self.in_buf.expect("setup ran");
        let out_buf = self.out_buf.expect("setup ran");
        let mut vals = vec![0.0; self.n];
        ctx.load(in_buf, 0, &mut vals)?;
        for v in &mut vals {
            *v = ctx.fma(*v, 2.0, 0.0);
        }
        ctx.store(out_buf, 0, &vals)
    }

    fn output(&self) -> BufferId {
        self.out_buf.expect("setup ran")
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d1(self.n)
    }

    /// `setup` counts executions and `execute_tile` reads the count to
    /// decide when to fail — observable per-run state, so the engine
    /// must never skip setup or resume this program from a snapshot.
    fn resumable(&self) -> bool {
        false
    }
}

impl Workload for Pathological {
    fn logical_shape(&self) -> OutputShape {
        OutputShape::d1(self.n)
    }

    fn error_coord(&self, idx: usize) -> Coord {
        [idx, 0, 0]
    }

    fn class(&self) -> KernelClass {
        // Diagnostic kernel; the Table I classification is immaterial.
        KernelClass::DGEMM
    }

    fn input_label(&self) -> String {
        format!("{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::config::DeviceConfig;
    use radcrit_accel::engine::Engine;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(Pathological::new(0, 1, Failure::Hang).is_err());
        assert!(Pathological::new(8, 0, Failure::Hang).is_err());
    }

    #[test]
    fn healthy_executions_double_the_input() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = Pathological::new(8, 2, Failure::Panic).unwrap();
        let golden = engine.golden(&mut k).unwrap();
        assert_eq!(
            golden.output,
            vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
        );
        assert_eq!(k.executions(), 1);
    }

    #[test]
    fn panics_after_budget_is_spent() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = Pathological::new(8, 1, Failure::Panic).unwrap();
        engine.golden(&mut k).unwrap();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.golden(&mut k)));
        assert!(result.is_err(), "second execution must panic");
    }
}
