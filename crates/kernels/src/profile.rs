//! Kernel classification metadata (Table I of the paper).

use serde::{Deserialize, Serialize};

/// Which resource bounds the kernel's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// Compute-bound (CPU in Table I).
    Cpu,
    /// Memory-bound.
    Memory,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Cpu => f.write_str("CPU"),
            Bound::Memory => f.write_str("Memory"),
        }
    }
}

/// Whether the work is evenly distributed across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Even distribution.
    Balanced,
    /// Uneven distribution (border boxes in LavaMD, AMR in CLAMR).
    Imbalanced,
}

impl std::fmt::Display for LoadBalance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadBalance::Balanced => f.write_str("Balanced"),
            LoadBalance::Imbalanced => f.write_str("Imbalanced"),
        }
    }
}

/// Regularity of the memory access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryAccess {
    /// Coalesced / vectorizable accesses.
    Regular,
    /// Data-dependent, irregular accesses.
    Irregular,
}

impl std::fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryAccess::Regular => f.write_str("Regular"),
            MemoryAccess::Irregular => f.write_str("Irregular"),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelClass {
    /// Bounding resource.
    pub bound: Bound,
    /// Load balance.
    pub balance: LoadBalance,
    /// Memory access pattern.
    pub access: MemoryAccess,
}

impl KernelClass {
    /// Table I row for DGEMM.
    pub const DGEMM: KernelClass = KernelClass {
        bound: Bound::Cpu,
        balance: LoadBalance::Balanced,
        access: MemoryAccess::Regular,
    };

    /// Table I row for LavaMD.
    pub const LAVAMD: KernelClass = KernelClass {
        bound: Bound::Memory,
        balance: LoadBalance::Imbalanced,
        access: MemoryAccess::Regular,
    };

    /// Table I row for HotSpot.
    pub const HOTSPOT: KernelClass = KernelClass {
        bound: Bound::Memory,
        balance: LoadBalance::Balanced,
        access: MemoryAccess::Regular,
    };

    /// Table I row for CLAMR.
    pub const CLAMR: KernelClass = KernelClass {
        bound: Bound::Cpu,
        balance: LoadBalance::Imbalanced,
        access: MemoryAccess::Irregular,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_rows_match_paper() {
        assert_eq!(KernelClass::DGEMM.bound, Bound::Cpu);
        assert_eq!(KernelClass::DGEMM.balance, LoadBalance::Balanced);
        assert_eq!(KernelClass::DGEMM.access, MemoryAccess::Regular);

        assert_eq!(KernelClass::LAVAMD.bound, Bound::Memory);
        assert_eq!(KernelClass::LAVAMD.balance, LoadBalance::Imbalanced);

        assert_eq!(KernelClass::HOTSPOT.bound, Bound::Memory);
        assert_eq!(KernelClass::HOTSPOT.balance, LoadBalance::Balanced);

        assert_eq!(KernelClass::CLAMR.bound, Bound::Cpu);
        assert_eq!(KernelClass::CLAMR.access, MemoryAccess::Irregular);
    }

    #[test]
    fn display_matches_table_wording() {
        assert_eq!(Bound::Cpu.to_string(), "CPU");
        assert_eq!(LoadBalance::Imbalanced.to_string(), "Imbalanced");
        assert_eq!(MemoryAccess::Irregular.to_string(), "Irregular");
    }
}
