//! Shallow-water solver: the open substitute for the DOE CLAMR mini-app.
//!
//! CLAMR is LANL-proprietary, so this crate implements an independent
//! solver with the same observable structure (§IV-B): the shallow-water
//! equations (conservation of mass, x momentum and y momentum) over a 2-D
//! grid, flat bottom, negligible vertical flow, one cell per thread, and
//! the standard circular-dam-break test problem. The scheme is a
//! conservative Lax–Friedrichs finite-volume update with reflective
//! walls, so that
//!
//! * total water mass is conserved to rounding — the invariant CLAMR's
//!   mass-consistency check exploits (§V-D, Atkinson et al.);
//! * an injected error changes the total mass and is *advected, not
//!   dissipated*: it propagates outward as a wave of corrupted cells,
//!   reproducing Fig. 9's error-locality map.
//!
//! CLAMR's cell-based adaptive mesh refinement is represented by
//! **activity-driven tiling**: only row blocks the dam-break wave can
//! have reached by a given time step are dispatched (the quiescent far
//! field is exactly stationary under the scheme, so skipping it is
//! lossless). The tile count therefore grows as the simulation proceeds —
//! the same "changes in number of threads between time steps to
//! re-balance the load" the paper attributes to CLAMR, and an imbalanced,
//! irregular workload per Table I.

use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::exec;
use radcrit_core::shape::{Coord, OutputShape};

use crate::profile::KernelClass;
use crate::Workload;

/// Rows per tile.
pub const BLOCK_ROWS: usize = 8;
/// Gravitational acceleration.
pub const GRAVITY: f64 = 9.8;
/// Time step (CFL-safe for the default depths with `dx = 1`).
pub const DT: f64 = 0.1;
/// Undisturbed water depth.
pub const H_LOW: f64 = 1.0;
/// Depth inside the dam.
pub const H_HIGH: f64 = 2.5;
/// Positivity floor for the depth (production shallow-water solvers
/// apply a positivity limiter so dry/corrupted cells cannot divide by
/// zero or go negative).
pub const H_MIN: f64 = 1.0e-3;
/// Upper depth bound of the limiter.
pub const H_MAX: f64 = 100.0;
/// Momentum magnitude bound of the limiter (CFL protection).
pub const MOMENTUM_MAX: f64 = 100.0;

/// The positivity/boundedness limiter applied after every cell update.
/// Fault-free dam-break states never reach the bounds, so the limiter is
/// the identity on clean runs; under injected corruption it keeps the
/// state physical (finite, positive depth), like the limiters in
/// production codes — a real hydro code would otherwise abort on the
/// first NaN.
#[inline]
pub fn limit_state(h: f64, hu: f64, hv: f64) -> (f64, f64, f64) {
    let h = if h.is_finite() {
        h.clamp(H_MIN, H_MAX)
    } else {
        H_MIN
    };
    let hu = if hu.is_finite() {
        hu.clamp(-MOMENTUM_MAX, MOMENTUM_MAX)
    } else {
        0.0
    };
    let hv = if hv.is_finite() {
        hv.clamp(-MOMENTUM_MAX, MOMENTUM_MAX)
    } else {
        0.0
    };
    (h, hu, hv)
}

/// The circular-dam-break shallow-water simulation.
#[derive(Debug)]
pub struct ShallowWater {
    rows: usize,
    cols: usize,
    steps: usize,
    dam_radius: f64,
    /// `(step, first_row, row_count)` per tile, precomputed from the
    /// maximum wave speed at construction.
    schedule: Vec<(usize, usize, usize)>,
    h0: Vec<f64>,
    bufs: Option<Buffers>,
}

#[derive(Debug, Clone, Copy)]
struct Buffers {
    h: [BufferId; 2],
    hu: [BufferId; 2],
    hv: [BufferId; 2],
}

impl ShallowWater {
    /// Creates a dam-break simulation on a `rows × cols` grid for
    /// `steps` time steps. The dam is a centred disc of radius
    /// `min(rows, cols) / 5`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] unless `rows` is a positive
    /// multiple of [`BLOCK_ROWS`], `cols ≥ 4` and `steps > 0`.
    pub fn new(rows: usize, cols: usize, steps: usize) -> Result<Self, AccelError> {
        if rows == 0 || !rows.is_multiple_of(BLOCK_ROWS) {
            return Err(AccelError::InvalidConfig(format!(
                "rows {rows} must be a positive multiple of {BLOCK_ROWS}"
            )));
        }
        if cols < 4 {
            return Err(AccelError::InvalidConfig("need at least 4 columns".into()));
        }
        if steps == 0 {
            return Err(AccelError::InvalidConfig("zero steps".into()));
        }
        let dam_radius = rows.min(cols) as f64 / 5.0;
        let h0 = initial_depth(rows, cols, dam_radius);
        let schedule = build_schedule(rows, steps, dam_radius);
        Ok(ShallowWater {
            rows,
            cols,
            steps,
            dam_radius,
            schedule,
            h0,
            bufs: None,
        })
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Simulated time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The dam radius in cells.
    pub fn dam_radius(&self) -> f64 {
        self.dam_radius
    }

    /// Tiles dispatched for time step `s` — grows as the wave expands
    /// (the AMR-like load variation of §IV-B).
    pub fn tiles_in_step(&self, s: usize) -> usize {
        self.schedule.iter().filter(|(st, _, _)| *st == s).count()
    }

    /// Total water mass (Σh) of a depth field — the conserved quantity
    /// behind CLAMR's mass-consistency error detector (§V-D).
    pub fn total_mass(h: &[f64]) -> f64 {
        h.iter().sum()
    }

    /// Host-side reference solution (same arithmetic order as the device
    /// kernel), returning the depth field.
    pub fn host_reference(&self) -> Vec<f64> {
        self.host_reference_full().0
    }

    /// Host-side reference returning the full `(h, hu, hv)` state, for
    /// energy/momentum diagnostics.
    pub fn host_reference_full(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let (r, c) = (self.rows, self.cols);
        let mut h = self.h0.clone();
        let mut hu = vec![0.0; r * c];
        let mut hv = vec![0.0; r * c];
        let mut nh = h.clone();
        let mut nhu = hu.clone();
        let mut nhv = hv.clone();
        for s in 0..self.steps {
            let rows_of_step: Vec<(usize, usize)> = self
                .schedule
                .iter()
                .filter(|(st, _, _)| *st == s)
                .map(|&(_, r0, n)| (r0, n))
                .collect();
            for &(r0, n) in &rows_of_step {
                for i in r0..r0 + n {
                    for j in 0..c {
                        let (a, b, d) = lax_friedrichs_cell(&h, &hu, &hv, i, j, r, c);
                        let (a, b, d) = limit_state(a, b, d);
                        nh[i * c + j] = a;
                        nhu[i * c + j] = b;
                        nhv[i * c + j] = d;
                    }
                }
            }
            for &(r0, n) in &rows_of_step {
                let lo = r0 * c;
                let hi = (r0 + n) * c;
                h[lo..hi].copy_from_slice(&nh[lo..hi]);
                hu[lo..hi].copy_from_slice(&nhu[lo..hi]);
                hv[lo..hi].copy_from_slice(&nhv[lo..hi]);
            }
        }
        (h, hu, hv)
    }
}

/// Initial condition: still water with a raised disc at the centre.
fn initial_depth(rows: usize, cols: usize, radius: f64) -> Vec<f64> {
    let (cr, cc) = (rows as f64 / 2.0, cols as f64 / 2.0);
    let mut h = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            let d2 = (i as f64 - cr).powi(2) + (j as f64 - cc).powi(2);
            h.push(if d2 <= radius * radius { H_HIGH } else { H_LOW });
        }
    }
    h
}

/// Per-step active-row schedule: blocks intersecting the disc of radius
/// `r0 + s · c_max · DT + margin`, where `c_max = √(g·H_HIGH)` bounds the
/// dam-break wave speed. Quiescent rows outside are exactly stationary.
fn build_schedule(rows: usize, steps: usize, dam_radius: f64) -> Vec<(usize, usize, usize)> {
    let c_max = (GRAVITY * H_HIGH).sqrt();
    let center = rows as f64 / 2.0;
    let mut schedule = Vec::new();
    for s in 0..steps {
        let reach = dam_radius + (s as f64 + 1.0) * c_max * DT + 2.0 * BLOCK_ROWS as f64;
        let lo = ((center - reach).floor().max(0.0)) as usize;
        let hi = ((center + reach).ceil() as usize).min(rows);
        let first_blk = lo / BLOCK_ROWS;
        let last_blk = (hi.max(1) - 1) / BLOCK_ROWS;
        for blk in first_blk..=last_blk {
            schedule.push((s, blk * BLOCK_ROWS, BLOCK_ROWS));
        }
    }
    schedule
}

/// One Lax–Friedrichs update of cell `(i, j)` from state `(h, hu, hv)`.
/// Reflective walls: ghost cells mirror depth and negate the normal
/// momentum.
#[allow(clippy::too_many_arguments)]
fn lax_friedrichs_cell(
    h: &[f64],
    hu: &[f64],
    hv: &[f64],
    i: usize,
    j: usize,
    rows: usize,
    cols: usize,
) -> (f64, f64, f64) {
    let idx = |i: usize, j: usize| i * cols + j;
    // Neighbour states with reflective walls: a wall ghost mirrors the
    // depth and negates the wall-normal momentum.
    let state = |ii: isize, jj: isize| -> (f64, f64, f64) {
        if ii < 0 || ii >= rows as isize {
            let m = idx(i, j);
            (h[m], hu[m], -hv[m])
        } else if jj < 0 || jj >= cols as isize {
            let m = idx(i, j);
            (h[m], -hu[m], hv[m])
        } else {
            let m = idx(ii as usize, jj as usize);
            (h[m], hu[m], hv[m])
        }
    };

    let (ii, jj) = (i as isize, j as isize);
    let e = state(ii, jj + 1);
    let w = state(ii, jj - 1);
    let n = state(ii - 1, jj);
    let s = state(ii + 1, jj);

    // Fluxes along x (east/west neighbours) and y (north/south).
    // Fused like the device FMA (single rounding).
    let fx = |(hh, huu, hvv): (f64, f64, f64)| {
        let u = huu / hh;
        (huu, huu.mul_add(u, 0.5 * GRAVITY * hh * hh), hvv * u)
    };
    let fy = |(hh, huu, hvv): (f64, f64, f64)| {
        let v = hvv / hh;
        (hvv, huu * v, hvv.mul_add(v, 0.5 * GRAVITY * hh * hh))
    };

    let (fe0, fe1, fe2) = fx(e);
    let (fw0, fw1, fw2) = fx(w);
    let (fn0, fn1, fn2) = fy(n);
    let (fs0, fs1, fs2) = fy(s);

    let k = DT / 2.0; // dx = dy = 1
    let avg = |a: f64, b: f64, c: f64, d: f64| 0.25 * (a + b + c + d);

    let nh = avg(e.0, w.0, n.0, s.0) - k * (fe0 - fw0) - k * (fs0 - fn0);
    let nhu = avg(e.1, w.1, n.1, s.1) - k * (fe1 - fw1) - k * (fs1 - fn1);
    let nhv = avg(e.2, w.2, n.2, s.2) - k * (fe2 - fw2) - k * (fs2 - fn2);
    (nh, nhu, nhv)
}

impl TiledProgram for ShallowWater {
    fn name(&self) -> &str {
        "shallow"
    }

    fn tile_count(&self) -> usize {
        self.schedule.len()
    }

    fn tiles_per_launch(&self) -> usize {
        // The widest time step (the AMR-like activity window at its
        // largest).
        (0..self.steps)
            .map(|s| self.tiles_in_step(s))
            .max()
            .unwrap_or(1)
    }

    fn threads_per_tile(&self) -> usize {
        // One thread per cell (Table II: #cells or more with AMR).
        BLOCK_ROWS * self.cols
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        let zeros = vec![0.0; self.rows * self.cols];
        // Both parity buffers start from the initial condition so skipped
        // (quiescent) regions hold identical data in either buffer.
        let bufs = Buffers {
            h: [
                mem.alloc_init("h_a", &self.h0),
                mem.alloc_init("h_b", &self.h0),
            ],
            hu: [
                mem.alloc_init("hu_a", &zeros),
                mem.alloc_init("hu_b", &zeros),
            ],
            hv: [
                mem.alloc_init("hv_a", &zeros),
                mem.alloc_init("hv_b", &zeros),
            ],
        };
        self.bufs = Some(bufs);
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        // Multiversioned tile body (see `Dgemm::execute_tile`): the
        // Lax–Friedrichs flux arithmetic compiles as one AVX2+FMA
        // region on hosts that have it, bit-identical to the portable
        // copy.
        #[cfg(target_arch = "x86_64")]
        if exec::active() == exec::Isa::Avx2 {
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            return unsafe { self.tile_avx2(tile, ctx) };
        }
        self.tile_body(tile, ctx)
    }

    fn output(&self) -> BufferId {
        let bufs = self.bufs.expect("setup ran");
        bufs.h[self.steps % 2]
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d2(self.rows, self.cols)
    }
}

impl ShallowWater {
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tile_avx2(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        self.tile_body(tile, ctx)
    }

    #[inline(always)]
    fn tile_body(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        let (rows, c) = (self.rows, self.cols);
        let (step, row0, nrows) = self.schedule[tile.index()];
        let bufs = self.bufs.expect("setup ran");
        let src = step % 2;
        let dst = 1 - src;

        // Load the tile rows plus one halo row on each side, clamped.
        let halo_top = row0.saturating_sub(1);
        let halo_bot = (row0 + nrows).min(rows - 1);
        let span = halo_bot - halo_top + 1;
        let mut lh = vec![0.0; span * c];
        let mut lhu = vec![0.0; span * c];
        let mut lhv = vec![0.0; span * c];
        ctx.load(bufs.h[src], halo_top * c, &mut lh)?;
        ctx.load(bufs.hu[src], halo_top * c, &mut lhu)?;
        ctx.load(bufs.hv[src], halo_top * c, &mut lhv)?;

        let mut oh = vec![0.0; c];
        let mut ohu = vec![0.0; c];
        let mut ohv = vec![0.0; c];

        for bi in 0..nrows {
            let i = row0 + bi;
            let li = i - halo_top;
            for j in 0..c {
                // Neighbour states with reflective walls, from the local
                // window.
                let state = |lii: isize, jj: isize, flip_u: bool, flip_v: bool| {
                    if lii < 0
                        || (halo_top as isize + lii) >= rows as isize
                        || jj < 0
                        || jj >= c as isize
                    {
                        let m = li * c + j;
                        let fu = if flip_u { -1.0 } else { 1.0 };
                        let fv = if flip_v { -1.0 } else { 1.0 };
                        (lh[m], fu * lhu[m], fv * lhv[m])
                    } else {
                        let m = lii as usize * c + jj as usize;
                        (lh[m], lhu[m], lhv[m])
                    }
                };
                let e = state(li as isize, j as isize + 1, true, false);
                let w = state(li as isize, j as isize - 1, true, false);
                let n = state(li as isize - 1, j as isize, false, true);
                let s = state(li as isize + 1, j as isize, false, true);

                let fx = |ctx: &mut TileCtx<'_>, (hh, huu, hvv): (f64, f64, f64)| {
                    let u = ctx.div(huu, hh);
                    let f1 = ctx.fma(huu, u, 0.5 * GRAVITY * hh * hh);
                    let f2 = ctx.mul(hvv, u);
                    (huu, f1, f2)
                };
                let fy = |ctx: &mut TileCtx<'_>, (hh, huu, hvv): (f64, f64, f64)| {
                    let v = ctx.div(hvv, hh);
                    let f1 = ctx.mul(huu, v);
                    let f2 = ctx.fma(hvv, v, 0.5 * GRAVITY * hh * hh);
                    (hvv, f1, f2)
                };

                let (fe0, fe1, fe2) = fx(ctx, e);
                let (fw0, fw1, fw2) = fx(ctx, w);
                let (fn0, fn1, fn2) = fy(ctx, n);
                let (fs0, fs1, fs2) = fy(ctx, s);

                let k = DT / 2.0;
                let a0 = ctx.op(0.25 * (e.0 + w.0 + n.0 + s.0));
                let a1 = ctx.op(0.25 * (e.1 + w.1 + n.1 + s.1));
                let a2 = ctx.op(0.25 * (e.2 + w.2 + n.2 + s.2));
                let uh = ctx.op(a0 - k * (fe0 - fw0) - k * (fs0 - fn0));
                let uhu = ctx.op(a1 - k * (fe1 - fw1) - k * (fs1 - fn1));
                let uhv = ctx.op(a2 - k * (fe2 - fw2) - k * (fs2 - fn2));
                let (lh2, lhu2, lhv2) = limit_state(uh, uhu, uhv);
                oh[j] = lh2;
                ohu[j] = lhu2;
                ohv[j] = lhv2;
            }
            ctx.store(bufs.h[dst], i * c, &oh)?;
            ctx.store(bufs.hu[dst], i * c, &ohu)?;
            ctx.store(bufs.hv[dst], i * c, &ohv)?;
        }
        Ok(())
    }
}

impl Workload for ShallowWater {
    fn logical_shape(&self) -> OutputShape {
        OutputShape::d2(self.rows, self.cols)
    }

    fn error_coord(&self, idx: usize) -> Coord {
        [idx / self.cols, idx % self.cols, 0]
    }

    fn class(&self) -> KernelClass {
        KernelClass::CLAMR
    }

    fn input_label(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::config::DeviceConfig;
    use radcrit_accel::engine::Engine;
    use radcrit_accel::strike::{StrikeSpec, StrikeTarget};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_config() {
        assert!(ShallowWater::new(0, 16, 4).is_err());
        assert!(ShallowWater::new(12, 16, 4).is_err());
        assert!(ShallowWater::new(16, 2, 4).is_err());
        assert!(ShallowWater::new(16, 16, 0).is_err());
        assert!(ShallowWater::new(16, 16, 4).is_ok());
    }

    #[test]
    fn golden_matches_host_reference_bitwise() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut k = ShallowWater::new(32, 32, 6).unwrap();
        let golden = engine.golden(&mut k).unwrap();
        assert_eq!(golden.output, k.host_reference());
    }

    #[test]
    fn quiescent_cells_are_exactly_stationary() {
        // Updating a still-water cell must return exactly the same state,
        // which is what makes activity-driven tiling lossless.
        let rows = 16;
        let cols = 16;
        let h = vec![H_LOW; rows * cols];
        let hu = vec![0.0; rows * cols];
        let hv = vec![0.0; rows * cols];
        let (nh, nhu, nhv) = lax_friedrichs_cell(&h, &hu, &hv, 7, 7, rows, cols);
        assert_eq!(nh, H_LOW);
        assert_eq!(nhu, 0.0);
        assert_eq!(nhv, 0.0);
    }

    #[test]
    fn mass_is_conserved() {
        let k = ShallowWater::new(32, 32, 20).unwrap();
        let initial_mass = ShallowWater::total_mass(&k.h0);
        let h = k.host_reference();
        let final_mass = ShallowWater::total_mass(&h);
        let rel = ((final_mass - initial_mass) / initial_mass).abs();
        assert!(rel < 1e-12, "mass drift {rel}");
    }

    #[test]
    fn wave_expands_over_time() {
        // Depth disturbance radius grows with steps.
        let disturbed = |steps: usize| -> usize {
            let k = ShallowWater::new(64, 64, steps).unwrap();
            let h = k.host_reference();
            h.iter().filter(|&&v| (v - H_LOW).abs() > 1e-9).count()
        };
        let early = disturbed(2);
        let late = disturbed(20);
        assert!(late > early, "wave must spread: {early} -> {late}");
    }

    #[test]
    fn tile_count_grows_with_wave() {
        let k = ShallowWater::new(128, 64, 40).unwrap();
        let first = k.tiles_in_step(0);
        let last = k.tiles_in_step(39);
        assert!(
            last > first,
            "activity tiling must widen: {first} -> {last}"
        );
    }

    #[test]
    fn injected_error_propagates_as_wave_and_breaks_mass() {
        let engine = Engine::new(DeviceConfig::xeon_phi_3120a());
        let mut k = ShallowWater::new(32, 32, 24).unwrap();
        let golden = k.host_reference();
        let golden_mass = ShallowWater::total_mass(&golden);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        // Corrupt an exponent bit of cached state early in the run.
        let tiles_step0 = k.tiles_in_step(0);
        let s = StrikeSpec::new(tiles_step0, StrikeTarget::L2 { mask: 1 << 60 });
        let out = engine.run(&mut k, &s, &mut rng).unwrap();
        assert!(out.strike_delivered);
        if out.golden_equivalent {
            // The engine proved the corruption died unobserved and
            // stopped early — masked by construction, the output buffer
            // is stale past the exit tile and must not be diffed.
            return;
        }
        let diffs: Vec<usize> = (0..golden.len())
            .filter(|&i| out.output[i] != golden[i])
            .collect();
        if !diffs.is_empty() {
            // Conservation: the corruption persists in the mass balance.
            let mass = ShallowWater::total_mass(&out.output);
            assert!(
                ((mass - golden_mass) / golden_mass).abs() > 1e-9,
                "conserved-quantity violation must be visible"
            );
            // And it spreads in both dimensions (a wave, not a point).
            if diffs.len() > 8 {
                let rows: std::collections::HashSet<_> = diffs.iter().map(|i| i / 32).collect();
                let cols: std::collections::HashSet<_> = diffs.iter().map(|i| i % 32).collect();
                assert!(rows.len() > 1 && cols.len() > 1);
            }
        }
    }

    #[test]
    fn limiter_is_identity_on_clean_states() {
        let (h, hu, hv) = limit_state(1.5, 0.3, -0.2);
        assert_eq!((h, hu, hv), (1.5, 0.3, -0.2));
    }

    #[test]
    fn limiter_sanitizes_corrupted_states() {
        let (h, _, _) = limit_state(f64::NAN, f64::INFINITY, -1.0e300);
        assert!(h > 0.0 && h.is_finite());
        let (h2, hu2, hv2) = limit_state(-5.0, 1.0e9, f64::NEG_INFINITY);
        assert_eq!(h2, H_MIN);
        assert_eq!(hu2, MOMENTUM_MAX);
        assert_eq!(hv2, 0.0);
    }

    #[test]
    fn cfl_is_respected() {
        // max wave speed * DT must stay below one cell per step.
        let c_max = (GRAVITY * H_HIGH).sqrt();
        assert!(c_max * DT < 1.0, "CFL violated: {}", c_max * DT);
    }
}
