//! Numerical properties of the kernels, independent of the simulator:
//! the physics/algebra that make each workload's criticality behaviour
//! what it is.

use proptest::prelude::*;

use radcrit_kernels::dgemm::Dgemm;
use radcrit_kernels::hotspot::HotSpot;
use radcrit_kernels::lavamd::LavaMd;
use radcrit_kernels::shallow::{ShallowWater, GRAVITY, H_HIGH, H_LOW};

// ------------------------------------------------------------------ DGEMM

/// The blocked reference must agree with a plain ijk triple loop to
/// rounding (different summation order, same value).
#[test]
fn dgemm_blocked_matches_naive() {
    let k = Dgemm::new(48, 3).unwrap();
    let blocked = k.host_reference();

    // Reconstruct the inputs the kernel generated.
    let n = 48;
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = radcrit_kernels::input::matrix_value(3, i, j);
            b[i * n + j] = radcrit_kernels::input::matrix_value(3 ^ 0xB, i, j);
        }
    }
    for i in 0..n {
        for j in 0..n {
            let naive: f64 = (0..n).map(|kk| a[i * n + kk] * b[kk * n + j]).sum();
            let got = blocked[i * n + j];
            assert!(
                (got - naive).abs() <= 1e-10 * naive.abs().max(1.0),
                "c[{i}][{j}]: blocked {got} vs naive {naive}"
            );
        }
    }
}

proptest! {
    /// DGEMM outputs grow linearly with N (positive inputs): the value
    /// magnitudes the dilution argument of DESIGN.md relies on.
    #[test]
    fn dgemm_output_magnitude_scales(seed in 0u64..50) {
        let small = Dgemm::new(16, seed).unwrap().host_reference();
        let large = Dgemm::new(64, seed).unwrap().host_reference();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&large) / mean(&small);
        prop_assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }
}

// ----------------------------------------------------------------- LavaMD

/// Doubling every charge doubles every output component (linearity in q).
#[test]
fn lavamd_output_is_linear_in_charge() {
    // Two kernels with identical positions; can't scale the internal
    // charges directly, so check a weaker consequence: the potential
    // component is bounded by (max q × pairs) and positive.
    let k = LavaMd::new(3, 8, 11).unwrap();
    let fv = k.host_reference();
    let p = 8;
    for box_idx in 0..27 {
        for i in 0..p {
            let v = fv[(box_idx * p + i) * 4];
            assert!(v > 0.0);
            // <= neighbours(27) * particles(8) * q_max(1.1) * vij_max.
            // vij = exp(-a2 r2) with r2 >= -dot bound: exp(0.5*3) ~ 4.5.
            assert!(v < 27.0 * 8.0 * 1.1 * 5.0, "potential {v} out of bound");
        }
    }
}

/// Border boxes accumulate strictly less potential than interior ones on
/// average — the load imbalance of Table I made visible in the output.
#[test]
fn lavamd_borders_have_less_potential() {
    let g = 4;
    let p = 6;
    let k = LavaMd::new(g, p, 9).unwrap();
    let fv = k.host_reference();
    let box_coord = |b: usize| (b % g, (b / g) % g, b / (g * g));
    let mut interior = (0.0, 0usize);
    let mut corner = (0.0, 0usize);
    for b in 0..g * g * g {
        let (x, y, z) = box_coord(b);
        let v_sum: f64 = (0..p).map(|i| fv[(b * p + i) * 4]).sum();
        let extreme = |c: usize| c == 0 || c == g - 1;
        if extreme(x) && extreme(y) && extreme(z) {
            corner.0 += v_sum;
            corner.1 += 1;
        } else if !extreme(x) && !extreme(y) && !extreme(z) {
            interior.0 += v_sum;
            interior.1 += 1;
        }
    }
    let interior_avg = interior.0 / interior.1 as f64;
    let corner_avg = corner.0 / corner.1 as f64;
    assert!(
        interior_avg > 2.0 * corner_avg,
        "interior {interior_avg} vs corner {corner_avg}: 27 vs 8 neighbourhoods"
    );
}

// ---------------------------------------------------------------- HotSpot

/// With zero power, ambient-equal temperatures are a fixed point.
#[test]
fn hotspot_equilibrium_is_stationary() {
    // Uniform 80 C (the ambient) with zero power is a fixed point.
    let k = HotSpot::with_state(16, 16, 10, vec![80.0; 256], vec![0.0; 256]).unwrap();
    let out = k.host_reference();
    for &t in &out {
        assert_eq!(t, 80.0, "equilibrium must be exact");
    }
}

// The update is a contraction towards equilibrium: the temperature
// spread never widens.
proptest! {
    #[test]
    fn hotspot_spread_contracts(seed in 0u64..30) {
        let k = HotSpot::new(16, 16, 30, seed).unwrap();
        let before = k.initial_temperatures().to_vec();
        let before = &before;
        let spread = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        let s0 = spread(before);
        let out = k.host_reference();
        // Power input perturbs slightly; allow a small margin.
        prop_assert!(spread(&out) <= s0 + 1.0, "{} -> {}", s0, spread(&out));
    }
}

// ---------------------------------------------------------------- Shallow

/// Total energy (potential + kinetic) never increases: Lax–Friedrichs is
/// dissipative, which is why clean runs are stable. (Potential alone is
/// not monotone — it sloshes into kinetic energy and back.)
#[test]
fn shallow_energy_is_non_increasing() {
    let energy = |steps: usize| -> f64 {
        let k = ShallowWater::new(32, 32, steps).unwrap();
        let (h, hu, hv) = k.host_reference_full();
        h.iter()
            .zip(hu.iter().zip(hv.iter()))
            .map(|(&hh, (&mu, &mv))| 0.5 * GRAVITY * hh * hh + 0.5 * (mu * mu + mv * mv) / hh)
            .sum()
    };
    let mut prev = energy(1);
    for steps in [5usize, 10, 20, 40] {
        let e = energy(steps);
        assert!(
            e <= prev + 1e-9,
            "energy grew: {prev} -> {e} at {steps} steps"
        );
        prev = e;
    }
}

/// Depth stays within the physical bracket [H_LOW-ish, H_HIGH] for the
/// dam break (no spurious oscillation beyond the initial bounds).
#[test]
fn shallow_depth_stays_bracketed() {
    let k = ShallowWater::new(48, 48, 60).unwrap();
    let h = k.host_reference();
    for &v in &h {
        assert!(
            (0.5 * H_LOW..=1.05 * H_HIGH).contains(&v),
            "depth {v} escaped the physical bracket"
        );
    }
}

/// The wavefront travels no faster than the gravity-wave bound used by
/// the activity schedule — otherwise skipped tiles would be wrong.
#[test]
fn shallow_wavefront_respects_schedule_bound() {
    let rows = 64;
    let steps = 30;
    let k = ShallowWater::new(rows, 64, steps).unwrap();
    let h = k.host_reference();
    let disturbed_rows: Vec<usize> = (0..rows)
        .filter(|&i| (0..64).any(|j| (h[i * 64 + j] - H_LOW).abs() > 1e-9))
        .collect();
    let center = rows as f64 / 2.0;
    let max_reach = disturbed_rows
        .iter()
        .map(|&i| (i as f64 - center).abs())
        .fold(0.0, f64::max);
    let bound = k.dam_radius() + (steps as f64 + 1.0) * (GRAVITY * H_HIGH).sqrt() * 0.1 + 2.0 * 8.0;
    assert!(
        max_reach <= bound,
        "wave reached {max_reach} rows, schedule allows {bound}"
    );
}
