//! Strike specifications: what a single impinging neutron does to the
//! machine, expressed against *abstract* machine structures.
//!
//! A [`StrikeSpec`] is resolved against live machine state by the
//! [`engine`](crate::engine) when execution reaches the strike instant:
//! an L2 strike picks a random *resident* line at that moment, a
//! register-file strike picks a victim tile among those pending in the
//! current wave, and so on. A strike that finds no live state to corrupt
//! (empty cache, no pending victim, op index beyond the tile's work) is
//! **architecturally masked** — outcome (1) of §II-A.

use serde::{Deserialize, Serialize};

/// What a corrupted scheduler entry does to its victim tile (§V-A: "the
/// outcome could range from the crash of a device to several improperly
/// scheduled threads producing incorrect data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerEffect {
    /// The victim tile is never dispatched: its output region keeps its
    /// pre-kernel contents.
    SkipTile,
    /// The victim tile is dispatched with another tile's coordinates: it
    /// recomputes (and overwrites) that tile's region while its own region
    /// keeps stale data.
    RedirectTile,
    /// The victim tile's dispatch state is garbled: every arithmetic
    /// operation it performs produces corrupted results.
    GarbleTile,
}

/// The machine structure a neutron upsets, with the corruption pattern.
///
/// Bit masks are XOR patterns over an `f64`'s 64 bits; `op_index` locates
/// the corrupted in-flight operation within the victim tile's arithmetic
/// work (the fault sampler draws it from the golden execution profile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrikeTarget {
    /// Bit flip in a random resident line of the shared L2.
    L2 {
        /// XOR mask applied to one element of the line.
        mask: u64,
    },
    /// Bit flip in a random resident line of the executing unit's L1.
    L1 {
        /// XOR mask applied to one element of the line.
        mask: u64,
    },
    /// Upset of register-file state (or the unprotected operand-collector
    /// queues behind it): corrupts the result of one in-flight operation
    /// of a victim tile pending in the current wave.
    RegisterFile {
        /// XOR mask applied to the operation result.
        mask: u64,
        /// Index of the corrupted operation within the victim tile's work
        /// (an index beyond the tile's last operation is architecturally
        /// masked).
        op_index: u64,
    },
    /// Upset of a wide vector register (Phi 512-bit VPU): the same lane
    /// bit corrupts `lanes` consecutive operations of the victim tile.
    VectorRegister {
        /// XOR mask applied to each affected lane's operation result.
        mask: u64,
        /// Number of consecutive operations (vector lanes) corrupted.
        lanes: u32,
        /// Index of the first corrupted operation within the victim tile.
        op_index: u64,
    },
    /// FPU pipeline upset: corrupts the result of one operation of the
    /// tile executing at the strike instant.
    Fpu {
        /// XOR mask applied to the operation result.
        mask: u64,
        /// Index of the corrupted operation within the tile.
        op_index: u64,
    },
    /// Transcendental-unit (SFU) upset: a corrupted range-reduction /
    /// exponent stage feeds the polynomial evaluation a wrongly scaled
    /// argument — the mechanism behind the paper's exploding LavaMD
    /// errors (§V-E: "exponentiation operations can turn small value
    /// variations into large differences").
    Sfu {
        /// Multiplier applied to the transcendental argument (a corrupted
        /// range reduction is off by ± powers of two).
        scale: f64,
        /// Index of the corrupted transcendental op within the tile.
        op_index: u64,
    },
    /// Core control-path upset (complex in-order x86 cores): a burst of
    /// `elems` consecutive stores writes stale store-queue data instead of
    /// the computed values.
    CoreControl {
        /// Number of consecutive stores corrupted.
        elems: u32,
        /// Index of the first corrupted store within the tile.
        store_index: u64,
    },
    /// Corruption of a unit's task/dispatch state: every tile the struck
    /// unit still has to run in its current chunk (OS static scheduling)
    /// or wave (hardware scheduling) computes garbage. On the Phi, whose
    /// OS partitions the iteration space into contiguous per-core chunks,
    /// this produces the paper's signature large square/cubic blocks of
    /// hugely wrong elements.
    UnitGarble,
    /// Scheduler-state corruption affecting the tile dispatched at the
    /// strike instant.
    Scheduler(SchedulerEffect),
}

impl StrikeTarget {
    /// A short site name for logs and summaries.
    pub fn site_name(&self) -> &'static str {
        match self {
            StrikeTarget::L2 { .. } => "l2",
            StrikeTarget::L1 { .. } => "l1",
            StrikeTarget::RegisterFile { .. } => "register_file",
            StrikeTarget::VectorRegister { .. } => "vector_register",
            StrikeTarget::Fpu { .. } => "fpu",
            StrikeTarget::Sfu { .. } => "sfu",
            StrikeTarget::CoreControl { .. } => "core_control",
            StrikeTarget::UnitGarble => "unit_garble",
            StrikeTarget::Scheduler(_) => "scheduler",
        }
    }

    /// The lowest flipped bit position of the strike's XOR mask, for
    /// targets that flip bits (`None` for control-path corruptions and
    /// the SFU's scale corruption).
    pub fn bit_index(&self) -> Option<u32> {
        let mask = match self {
            StrikeTarget::L2 { mask }
            | StrikeTarget::L1 { mask }
            | StrikeTarget::RegisterFile { mask, .. }
            | StrikeTarget::VectorRegister { mask, .. }
            | StrikeTarget::Fpu { mask, .. } => *mask,
            StrikeTarget::Sfu { .. }
            | StrikeTarget::CoreControl { .. }
            | StrikeTarget::UnitGarble
            | StrikeTarget::Scheduler(_) => return None,
        };
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros())
        }
    }

    /// The index of the first corrupted operation (or store, for
    /// [`StrikeTarget::CoreControl`]) within the victim tile's work, for
    /// targets that corrupt in-flight operations.
    pub fn op_index(&self) -> Option<u64> {
        match self {
            StrikeTarget::RegisterFile { op_index, .. }
            | StrikeTarget::VectorRegister { op_index, .. }
            | StrikeTarget::Fpu { op_index, .. }
            | StrikeTarget::Sfu { op_index, .. } => Some(*op_index),
            StrikeTarget::CoreControl { store_index, .. } => Some(*store_index),
            StrikeTarget::L2 { .. }
            | StrikeTarget::L1 { .. }
            | StrikeTarget::UnitGarble
            | StrikeTarget::Scheduler(_) => None,
        }
    }
}

/// One neutron strike: the dispatch position at which it lands and the
/// structure it corrupts.
///
/// §IV-D tunes the beam so that at most one neutron generates a failure
/// per execution; correspondingly the engine accepts at most one
/// `StrikeSpec` per run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrikeSpec {
    /// The dispatch position (tile execution index) just before which the
    /// strike is applied.
    pub at_tile: usize,
    /// What is corrupted.
    pub target: StrikeTarget,
}

impl StrikeSpec {
    /// Creates a strike at dispatch position `at_tile` on `target`.
    pub fn new(at_tile: usize, target: StrikeTarget) -> Self {
        StrikeSpec { at_tile, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_distinct() {
        let targets = [
            StrikeTarget::L2 { mask: 1 },
            StrikeTarget::L1 { mask: 1 },
            StrikeTarget::RegisterFile {
                mask: 1,
                op_index: 5,
            },
            StrikeTarget::VectorRegister {
                mask: 1,
                lanes: 8,
                op_index: 5,
            },
            StrikeTarget::Fpu {
                mask: 1,
                op_index: 5,
            },
            StrikeTarget::Sfu {
                scale: -16.0,
                op_index: 5,
            },
            StrikeTarget::CoreControl {
                elems: 2,
                store_index: 5,
            },
            StrikeTarget::UnitGarble,
            StrikeTarget::Scheduler(SchedulerEffect::SkipTile),
        ];
        let names: std::collections::HashSet<_> = targets.iter().map(|t| t.site_name()).collect();
        assert_eq!(names.len(), targets.len());
    }

    #[test]
    fn bit_and_op_helpers_cover_the_variants() {
        let fpu = StrikeTarget::Fpu {
            mask: 1 << 52,
            op_index: 7,
        };
        assert_eq!(fpu.bit_index(), Some(52));
        assert_eq!(fpu.op_index(), Some(7));
        let l2 = StrikeTarget::L2 { mask: 0b1100 };
        assert_eq!(l2.bit_index(), Some(2), "lowest flipped bit");
        assert_eq!(l2.op_index(), None);
        let cc = StrikeTarget::CoreControl {
            elems: 3,
            store_index: 11,
        };
        assert_eq!(cc.bit_index(), None);
        assert_eq!(cc.op_index(), Some(11));
        let sched = StrikeTarget::Scheduler(SchedulerEffect::SkipTile);
        assert_eq!(sched.bit_index(), None);
        assert_eq!(sched.op_index(), None);
        assert_eq!(StrikeTarget::L1 { mask: 0 }.bit_index(), None);
    }

    #[test]
    fn spec_debug_is_informative() {
        let spec = StrikeSpec::new(42, StrikeTarget::L2 { mask: 1 << 52 });
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("42") && dbg.contains("L2"));
    }
}
