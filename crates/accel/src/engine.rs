//! The tiled execution engine.
//!
//! Executes a [`TiledProgram`] tile by tile in dispatch order on a
//! simulated device, optionally delivering one [`StrikeSpec`] when
//! execution reaches the strike instant. Execution is deterministic for a
//! given program: a fault-free run reproduces the golden output exactly
//! (the paper computes golden outputs "on the very same device used for
//! experiments" for the same reason, §IV-D).

use std::sync::Arc;
use std::time::Instant;

use rand::Rng;

use radcrit_core::DirtyRegion;
use radcrit_obs::profile::{phase_if, profiling_enabled, PhaseId};
use radcrit_obs::MetricsRegistry;

use crate::cache::CacheHierarchy;
use crate::config::DeviceConfig;
use crate::error::AccelError;
use crate::memory::DeviceMemory;
use crate::profile::ExecutionProfile;
use crate::program::{
    apply_writebacks, MachineCounters, StoreLog, TileCtx, TileFault, TileId, TiledProgram,
};
use crate::scheduler::DispatchPlan;
use crate::snapshot::{EngineSnapshot, SnapshotPolicy, SnapshotSet};
use crate::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
use crate::trace::{ExecutionTrace, TileTrace};

/// The result of one engine run.
///
/// The engine always runs the program to completion; crash/hang outcomes
/// are classified by the fault layer *before* execution (a crashed run has
/// no output to analyze). `strike_delivered` reports whether the strike
/// found live state to corrupt — `false` means the strike was
/// architecturally masked (empty cache set, no pending victim).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The output buffer contents after the final cache flush.
    pub output: Vec<f64>,
    /// Dynamic profile of the run.
    pub profile: ExecutionProfile,
    /// Whether the strike corrupted any machine state.
    pub strike_delivered: bool,
    /// How each strike was resolved against live machine state, in
    /// delivery order (empty for golden runs).
    pub resolutions: Vec<StrikeResolution>,
    /// For differential (snapshot-resumed) runs: the output elements
    /// that could differ from the golden output — everything outside is
    /// bit-equal by the resume invariant. `None` for full runs.
    pub dirty: Option<DirtyRegion>,
    /// The engine proved mid-run that every strike died without touching
    /// any observable state (no pending flips, no observed corrupted
    /// load, no write-back, no armed faults) and stopped executing
    /// early: by the resumability contract the finished run's output
    /// would be bit-equal to golden, so callers must skip the output
    /// compare — the returned buffer may hold stale bytes past the exit
    /// tile.
    pub golden_equivalent: bool,
}

/// Reusable per-worker state for repeated injections of one program on
/// one engine: the post-setup memory template (so `setup` runs once, not
/// per injection) and the previous run's memory image (so buffers are
/// restored in place instead of reallocated).
///
/// A scratch is only valid for the `(engine, program)` pair it was first
/// used with; use a fresh one per campaign worker.
#[derive(Debug, Default)]
pub struct RunScratch {
    template: Option<DeviceMemory>,
    spare: Option<DeviceMemory>,
    spare_caches: Option<CacheHierarchy>,
    /// When the spare memory's written flags mirror a [`WarmState`]'s
    /// (identified by its unique generation), a fork can restore only
    /// the buffers either side has written since that sync instead of
    /// every buffer. Cleared whenever the spare is filled from anything
    /// other than that warm state.
    spare_origin: Option<u64>,
}

impl RunScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        RunScratch::default()
    }

    /// Runs `program.setup` once to populate the template (and the
    /// program's buffer ids).
    fn ensure_template<P: TiledProgram + ?Sized>(
        &mut self,
        program: &mut P,
    ) -> Result<(), AccelError> {
        if self.template.is_none() {
            let mut m = DeviceMemory::new();
            program.setup(&mut m)?;
            self.template = Some(m);
        }
        Ok(())
    }

    /// An owned memory image equal to the template, reusing the spare
    /// allocation from the previous run when available.
    fn image_of_template(&mut self) -> DeviceMemory {
        self.spare_origin = None;
        let RunScratch {
            template, spare, ..
        } = self;
        let t = template.as_ref().expect("ensure_template ran");
        Self::fill(spare, t)
    }

    fn fill(spare: &mut Option<DeviceMemory>, src: &DeviceMemory) -> DeviceMemory {
        match spare.take() {
            Some(mut m) => {
                m.restore_from(src);
                m
            }
            None => src.clone(),
        }
    }

    /// An owned cache hierarchy equal to `src`, reusing the previous
    /// run's allocations (set vectors, flip tables) when available.
    fn caches_of(&mut self, src: &CacheHierarchy) -> CacheHierarchy {
        match self.spare_caches.take() {
            Some(mut c) => {
                c.restore_from(src);
                c
            }
            None => src.clone(),
        }
    }
}

/// Restored-and-advanced golden machine state shared by a bucket of
/// injections whose strikes resume from the same snapshot.
///
/// Built once per bucket by [`Engine::warm_restore`], rolled forward
/// tile by tile with [`Engine::warm_advance`], and forked (copied into
/// the scratch spares, never mutated) per strike by
/// [`Engine::run_forked`]. Because golden execution is deterministic,
/// the warm state at tile `t` is bit-equal to the state a per-injection
/// snapshot resume would rebuild at `t` — which is what makes forked
/// runs bit-identical to unbatched differential runs.
#[derive(Debug)]
pub struct WarmState {
    mem: DeviceMemory,
    caches: CacheHierarchy,
    counters: MachineCounters,
    l2_resident_samples: f64,
    next_tile: usize,
    resume_tile: usize,
    /// Unique id for the dirty-only fork restore (see
    /// [`RunScratch::spare_origin`]). `mem`'s write tracking is reset
    /// when the state is built, so its written flags name exactly the
    /// buffers golden advancement has touched since.
    gen: u64,
}

/// Source of [`WarmState::gen`] values; never reused, so a scratch's
/// `spare_origin` can only ever match the warm state it last synced to.
static NEXT_WARM_GEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl WarmState {
    /// The snapshot tile this state was restored from (the bucket key).
    #[must_use]
    pub fn resume_tile(&self) -> usize {
        self.resume_tile
    }

    /// The next tile golden execution would run; strikes at
    /// `>= next_tile` can fork from this state as-is.
    #[must_use]
    pub fn next_tile(&self) -> usize {
        self.next_tile
    }
}

/// How one strike was resolved against live machine state — the piece of
/// fault provenance only the engine knows, because victim selection
/// consumes the injection's RNG stream at delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrikeResolution {
    /// The dispatch position at which the strike landed.
    pub at_tile: usize,
    /// The struck structure's site name (see
    /// [`StrikeTarget::site_name`]).
    pub site: &'static str,
    /// Whether the strike found live state to corrupt.
    pub delivered: bool,
    /// The dispatch position whose state was corrupted, when the target
    /// resolves to a specific tile (register-file strikes pick a pending
    /// victim in the wave; pipeline strikes hit the executing tile).
    pub victim_tile: Option<usize>,
    /// The execution unit involved, for unit-scoped targets.
    pub unit: Option<usize>,
    /// The destination a scheduler redirect re-dispatched the victim to.
    pub redirect_dest: Option<usize>,
}

/// The simulation engine for one device configuration.
///
/// # Examples
///
/// ```
/// use radcrit_accel::{config::DeviceConfig, engine::Engine};
///
/// let engine = Engine::new(DeviceConfig::kepler_k40());
/// assert_eq!(engine.config().units(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: DeviceConfig,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Engine {
    /// Creates an engine for `cfg`.
    pub fn new(cfg: DeviceConfig) -> Self {
        Engine { cfg, metrics: None }
    }

    /// Attaches a metrics registry: subsequent runs record per-phase
    /// wall-time histograms (`radcrit_engine_phase_us{phase=…}`), run
    /// counts and dispatch-plan geometry. Without a registry the timing
    /// instrumentation is skipped entirely.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The device configuration this engine simulates.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Runs `program` without faults and returns its golden output and
    /// execution profile.
    ///
    /// # Errors
    ///
    /// Propagates program setup/execution errors.
    pub fn golden<P: TiledProgram + ?Sized>(
        &self,
        program: &mut P,
    ) -> Result<RunOutcome, AccelError> {
        // The RNG is never consulted without a strike.
        let mut rng = NoRng;
        Ok(self
            .run_internal(program, RunRequest::plain(&[]), &mut rng, None)?
            .0)
    }

    /// Like [`Engine::golden`], but additionally captures golden-prefix
    /// machine snapshots per `policy` for later differential injection
    /// runs (see [`Engine::run_from`]). The returned outcome is
    /// bit-identical to a plain golden run; the [`SnapshotSet`] is empty
    /// when the program is not [`TiledProgram::resumable`] or the byte
    /// budget admits no snapshot.
    ///
    /// # Errors
    ///
    /// Propagates program setup/execution errors.
    pub fn golden_snapshotted<P: TiledProgram + ?Sized>(
        &self,
        program: &mut P,
        policy: &SnapshotPolicy,
    ) -> Result<(RunOutcome, SnapshotSet), AccelError> {
        let mut rng = NoRng;
        let req = RunRequest {
            capture: Some(*policy),
            ..RunRequest::plain(&[])
        };
        self.run_internal(program, req, &mut rng, None)
    }

    /// Like [`Engine::golden`], but also collects a per-tile
    /// [`ExecutionTrace`] for workload analysis (operational intensity,
    /// load balance).
    ///
    /// # Errors
    ///
    /// Propagates program setup/execution errors.
    pub fn golden_traced<P: TiledProgram + ?Sized>(
        &self,
        program: &mut P,
    ) -> Result<(RunOutcome, ExecutionTrace), AccelError> {
        let mut rng = NoRng;
        let mut trace = ExecutionTrace::new();
        let (outcome, _) =
            self.run_internal(program, RunRequest::plain(&[]), &mut rng, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// Runs `program`, delivering `strike` when dispatch reaches its
    /// instant. `rng` resolves strike targets against live machine state
    /// (choice of resident line, victim tile, redirect destination).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::StrikeOutOfRange`] if the strike instant is
    /// past the last tile, and propagates program errors.
    pub fn run<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
    ) -> Result<RunOutcome, AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        Ok(self
            .run_internal(
                program,
                RunRequest::plain(std::slice::from_ref(strike)),
                rng,
                None,
            )?
            .0)
    }

    /// Like [`Engine::run`], but also collects a per-tile
    /// [`ExecutionTrace`]. The trace is what joins a strike to the tiles
    /// that touched struck state afterwards (fault provenance); tracing
    /// never consults the RNG, so a traced run resolves the strike — and
    /// produces the output — exactly as the untraced run would.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::StrikeOutOfRange`] if the strike instant is
    /// past the last tile, and propagates program errors.
    pub fn run_traced<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
    ) -> Result<(RunOutcome, ExecutionTrace), AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let mut trace = ExecutionTrace::new();
        let (outcome, _) = self.run_internal(
            program,
            RunRequest::plain(std::slice::from_ref(strike)),
            rng,
            Some(&mut trace),
        )?;
        Ok((outcome, trace))
    }

    /// Differential variant of [`Engine::run`]: resumes from the nearest
    /// snapshot in `snapshots` at or before `strike.at_tile` instead of
    /// tile 0. Output, `resolutions` and profile are bit-identical to a
    /// full run (the strike consumes the RNG identically), and the
    /// outcome carries the dirty output region for sparse comparison.
    /// Falls back to a full run when the program is not resumable or no
    /// usable snapshot exists.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_from<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        snapshots: &SnapshotSet,
    ) -> Result<RunOutcome, AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let mut scratch = RunScratch::new();
        self.run_injection(program, strike, rng, Some(snapshots), &mut scratch)
    }

    /// [`Engine::run_from`] with a per-tile [`ExecutionTrace`]. A
    /// resumed trace covers only the tiles from the resume point on —
    /// exactly the tiles a strike at or after that point can touch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_from_traced<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        snapshots: &SnapshotSet,
    ) -> Result<(RunOutcome, ExecutionTrace), AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let mut scratch = RunScratch::new();
        self.run_injection_traced(program, strike, rng, Some(snapshots), &mut scratch)
    }

    /// The campaign-facing injection entry point: differential when
    /// `snapshots` provides a usable resume point, full otherwise, with
    /// `scratch` amortizing setup and memory allocation across repeated
    /// calls for the same program.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_injection<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        snapshots: Option<&SnapshotSet>,
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome, AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let req = RunRequest {
            snapshots,
            scratch: Some(scratch),
            ..RunRequest::plain(std::slice::from_ref(strike))
        };
        Ok(self.run_internal(program, req, rng, None)?.0)
    }

    /// [`Engine::run_injection`] with a per-tile [`ExecutionTrace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_injection_traced<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        snapshots: Option<&SnapshotSet>,
        scratch: &mut RunScratch,
    ) -> Result<(RunOutcome, ExecutionTrace), AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let mut trace = ExecutionTrace::new();
        let req = RunRequest {
            snapshots,
            scratch: Some(scratch),
            ..RunRequest::plain(std::slice::from_ref(strike))
        };
        let (outcome, _) = self.run_internal(program, req, rng, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// Runs `program` under *several* strikes in one execution — the
    /// regime the paper's experimental design explicitly avoids (§IV-D
    /// keeps observed error rates below 10⁻³/execution so at most one
    /// neutron corrupts a run). Exposed so that the single-strike design
    /// rule itself can be studied: at high flux, per-strike statistics
    /// become biased because strikes overlap.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::StrikeOutOfRange`] if any strike instant is
    /// past the last tile, and propagates program errors.
    pub fn run_multi<P, R>(
        &self,
        program: &mut P,
        strikes: &[StrikeSpec],
        rng: &mut R,
    ) -> Result<RunOutcome, AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        Ok(self
            .run_internal(program, RunRequest::plain(strikes), rng, None)?
            .0)
    }

    /// Restores the nearest snapshot at or before `tile` into an owned
    /// [`WarmState`] — the batch scheduler's once-per-bucket restore.
    /// `reuse` recycles a previous bucket's allocations (memory image,
    /// cache tables) instead of cloning fresh ones. Returns `None` when
    /// the program is not resumable or no snapshot covers `tile`.
    ///
    /// # Errors
    ///
    /// Propagates program setup errors.
    pub fn warm_restore<P>(
        &self,
        program: &mut P,
        snapshots: &SnapshotSet,
        tile: usize,
        scratch: &mut RunScratch,
        reuse: Option<WarmState>,
    ) -> Result<Option<WarmState>, AccelError>
    where
        P: TiledProgram + ?Sized,
    {
        if !program.resumable() {
            return Ok(None);
        }
        let Some(snap) = snapshots.resume_point(tile) else {
            return Ok(None);
        };
        scratch.ensure_template(program)?;
        let template = scratch.template.as_ref().expect("ensure_template ran");
        let (mut mem, caches) = match reuse {
            Some(w) => {
                let mut m = w.mem;
                m.restore_from(template);
                let mut c = w.caches;
                c.restore_from(&snap.caches);
                (m, c)
            }
            None => (template.clone(), snap.caches.clone()),
        };
        mem.apply_delta(&snap.mem_delta)?;
        // Baseline for the dirty-only fork restore: from here on the
        // written flags name the buffers golden advancement touches.
        mem.reset_write_tracking();
        Ok(Some(WarmState {
            mem,
            caches,
            counters: snap.counters,
            l2_resident_samples: snap.l2_resident_samples,
            next_tile: snap.at_tile,
            resume_tile: snap.at_tile,
            gen: NEXT_WARM_GEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }))
    }

    /// Rolls `warm` forward fault-free to `to_tile` (exclusive),
    /// replaying the golden tiles in between — the shared prefix work a
    /// bucket's strikes amortize. Returns how many tiles were executed
    /// (`0` when already at or past `to_tile`).
    ///
    /// # Errors
    ///
    /// Propagates program execution errors.
    pub fn warm_advance<P>(
        &self,
        program: &mut P,
        warm: &mut WarmState,
        to_tile: usize,
    ) -> Result<usize, AccelError>
    where
        P: TiledProgram + ?Sized,
    {
        let tiles = program.tile_count();
        let to_tile = to_tile.min(tiles);
        if to_tile <= warm.next_tile {
            return Ok(0);
        }
        let launch_tiles = program.tiles_per_launch().min(tiles).max(1);
        let plan = DispatchPlan::new(
            &self.cfg,
            tiles,
            launch_tiles,
            program.threads_per_tile(),
            program.local_mem_per_tile(),
        );
        let advanced = to_tile - warm.next_tile;
        let prof = profiling_enabled();
        for pos in warm.next_tile..to_tile {
            let unit = plan.unit_of(pos);
            let mut ctx = TileCtx::new(&mut warm.mem, &mut warm.caches, unit, TileFault::none());
            {
                let _scope = phase_if(prof, PhaseId::TileExecute);
                program.execute_tile(TileId(pos), &mut ctx)?;
            }
            let c = ctx.drain_counters();
            warm.counters.ops += c.ops;
            warm.counters.trans_ops += c.trans_ops;
            warm.counters.loads += c.loads;
            warm.counters.stores += c.stores;
            warm.l2_resident_samples += warm.caches.l2_resident_lines() as f64;
        }
        warm.next_tile = to_tile;
        Ok(advanced)
    }

    /// Forks `warm` (copy into the scratch spares; `warm` itself is
    /// untouched) and runs the suffix from `warm.next_tile()` under
    /// `strike`. `bucket_spans` is the bucket's precomputed golden
    /// suffix span union (`SnapshotSet::golden_spans_from` at the
    /// bucket's resume tile); the returned dirty region is the run's own
    /// store log union those spans — exactly what an unbatched
    /// differential run would report.
    ///
    /// # Errors
    ///
    /// [`AccelError::StrikeOutOfRange`] if the strike instant is past
    /// the last tile or before `warm.next_tile()` (the fork would replay
    /// past the delivery instant); propagates program errors.
    pub fn run_forked<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        warm: &WarmState,
        bucket_spans: &[(usize, usize)],
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome, AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let req = RunRequest {
            scratch: Some(scratch),
            warm: Some(warm),
            bucket_spans: Some(bucket_spans),
            ..RunRequest::plain(std::slice::from_ref(strike))
        };
        Ok(self.run_internal(program, req, rng, None)?.0)
    }

    /// [`Engine::run_forked`] with a per-tile [`ExecutionTrace`]
    /// covering the forked suffix — the same tiles an unbatched resumed
    /// trace covers once filtered to positions `>= strike.at_tile`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run_forked`].
    pub fn run_forked_traced<P, R>(
        &self,
        program: &mut P,
        strike: &StrikeSpec,
        rng: &mut R,
        warm: &WarmState,
        bucket_spans: &[(usize, usize)],
        scratch: &mut RunScratch,
    ) -> Result<(RunOutcome, ExecutionTrace), AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let mut trace = ExecutionTrace::new();
        let req = RunRequest {
            scratch: Some(scratch),
            warm: Some(warm),
            bucket_spans: Some(bucket_spans),
            ..RunRequest::plain(std::slice::from_ref(strike))
        };
        let (outcome, _) = self.run_internal(program, req, rng, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    fn run_internal<P, R>(
        &self,
        program: &mut P,
        req: RunRequest<'_>,
        rng: &mut R,
        mut trace: Option<&mut ExecutionTrace>,
    ) -> Result<(RunOutcome, SnapshotSet), AccelError>
    where
        P: TiledProgram + ?Sized,
        R: Rng + ?Sized,
    {
        let tiles = program.tile_count();
        let launch_tiles = program.tiles_per_launch().min(tiles).max(1);
        let threads_per_tile = program.threads_per_tile();
        let local_mem = program.local_mem_per_tile();
        for s in req.strikes {
            if s.at_tile >= tiles {
                return Err(AccelError::StrikeOutOfRange {
                    tile: s.at_tile,
                    tiles,
                });
            }
            // A fork replays tiles from `next_tile` on; a strike before
            // that instant could never be delivered.
            if let Some(w) = req.warm {
                if s.at_tile < w.next_tile {
                    return Err(AccelError::StrikeOutOfRange {
                        tile: s.at_tile,
                        tiles: w.next_tile,
                    });
                }
            }
        }

        let mut phase_start = self.metrics.as_ref().map(|_| Instant::now());
        let resumable = program.resumable();
        let mut scratch = req.scratch;

        // Differential resume: the latest snapshot at or before the first
        // strike tile. Only resumable programs qualify; capture runs are
        // full golden runs by construction. Resuming is sound because the
        // engine's only cross-tile state is (mem, caches, counters), all
        // restored below, and no strike perturbs anything before its
        // tile — so golden state at tile r equals *any* run's state at r
        // for r ≤ the first strike tile.
        let resume: Option<&EngineSnapshot> = if resumable && req.capture.is_none() {
            req.snapshots.and_then(|set| {
                let first = req.strikes.iter().map(|s| s.at_tile).min()?;
                set.resume_point(first)
            })
        } else {
            None
        };
        let forked = req.warm.is_some();
        let resumed = resume.is_some() || forked;

        let (mut mem, mut caches, mut totals, mut l2_resident_samples, start_tile) =
            if let Some(w) = req.warm {
                // Fork: copy the bucket's warm state into the scratch spares
                // (or clone without a scratch). The warm state already sits
                // at `next_tile`, prefix replay included, so the fork starts
                // right at the strike instant.
                let (mem, caches) = match scratch.as_deref_mut() {
                    Some(sc) => {
                        // Same warm state as the previous fork: only the
                        // buffers written on either side since that sync can
                        // differ, so skip the rest of the image copy.
                        let mem = match (sc.spare_origin == Some(w.gen), sc.spare.take()) {
                            (true, Some(mut m)) => {
                                m.restore_written_from(&w.mem);
                                m
                            }
                            (_, spare) => {
                                sc.spare_origin = Some(w.gen);
                                sc.spare = spare;
                                RunScratch::fill(&mut sc.spare, &w.mem)
                            }
                        };
                        (mem, sc.caches_of(&w.caches))
                    }
                    None => (w.mem.clone(), w.caches.clone()),
                };
                (mem, caches, w.counters, w.l2_resident_samples, w.next_tile)
            } else {
                match resume {
                    Some(snap) => {
                        // Snapshots hold memory as a delta against the
                        // post-setup image, so resume starts from that image —
                        // the scratch template when available, else a fresh
                        // setup — and overlays the buffers the golden prefix
                        // wrote.
                        let (mut mem, caches) = match scratch.as_deref_mut() {
                            Some(sc) => {
                                sc.ensure_template(program)?;
                                (sc.image_of_template(), sc.caches_of(&snap.caches))
                            }
                            None => {
                                let mut m = DeviceMemory::new();
                                program.setup(&mut m)?;
                                (m, snap.caches.clone())
                            }
                        };
                        mem.apply_delta(&snap.mem_delta)?;
                        (
                            mem,
                            caches,
                            snap.counters,
                            snap.l2_resident_samples,
                            snap.at_tile,
                        )
                    }
                    None => {
                        let mem = match scratch.as_deref_mut().filter(|_| resumable) {
                            Some(sc) => {
                                sc.ensure_template(program)?;
                                sc.image_of_template()
                            }
                            None => {
                                let mut m = DeviceMemory::new();
                                program.setup(&mut m)?;
                                m
                            }
                        };
                        (
                            mem,
                            CacheHierarchy::new(&self.cfg),
                            MachineCounters::default(),
                            0.0,
                            0,
                        )
                    }
                }
            };
        let plan = DispatchPlan::new(&self.cfg, tiles, launch_tiles, threads_per_tile, local_mem);

        if let Some(m) = self.metrics.as_deref() {
            m.counter_add("radcrit_engine_runs_total", &[], 1);
            if resumed {
                m.counter_add("radcrit_engine_resumed_runs_total", &[], 1);
            }
            if forked {
                m.counter_add("radcrit_engine_forked_runs_total", &[], 1);
            }
            plan.observe(m);
        }
        self.phase_done("setup", &mut phase_start);

        // Snapshot capture plan: explicit stride, or as many evenly
        // spaced snapshots as the byte budget admits (estimated from the
        // memory image plus a bound on cache metadata — the hierarchy
        // cannot hold more distinct lines than the memory footprint).
        let mut set = SnapshotSet::default();
        let capture_plan = req
            .capture
            .filter(|_| resumable && tiles > 0)
            .map(|policy| {
                let budget = policy.budget();
                let stride = if policy.stride > 0 {
                    policy.stride
                } else {
                    // Snapshots store only written buffers (≈ the output) plus
                    // cache metadata bounded by what can be resident at once.
                    let line = caches.line_bytes().max(1);
                    let out_bytes = mem.len_of(program.output()).unwrap_or(0) * 8;
                    let capacity =
                        self.cfg.l2().size_bytes + self.cfg.units() * self.cfg.l1().size_bytes;
                    let resident = mem.total_bytes().min(capacity);
                    let est = out_bytes + caches.approx_heap_bytes() + resident / line * 48;
                    let max_snaps = (budget / est.max(1)).max(1);
                    tiles.div_ceil(max_snaps).max(1)
                };
                (stride, budget)
            });
        if capture_plan.is_some() {
            // Delta tracking baseline: the post-setup image.
            mem.reset_write_tracking();
        }

        // Record output-buffer stores when capturing (to know the golden
        // suffix spans) and when resumed (to know the faulty run's own
        // dirty spans, including redirects landing before the resume
        // point).
        let mut store_log = if capture_plan.is_some() || resumed {
            Some(StoreLog::new(program.output()))
        } else {
            None
        };

        let mut strike_delivered = false;
        let mut resolutions: Vec<StrikeResolution> = Vec::new();

        // Pending per-position effects resolved from the strikes. A
        // single-strike run (the normal case) keeps these collections at
        // most one element long.
        let mut armed_faults: Vec<(usize, TileFault)> = Vec::new();
        let mut skip_positions: Vec<usize> = Vec::new();
        let mut redirects: Vec<(usize, usize)> = Vec::new();
        let mut unit_garbles: Vec<usize> = Vec::new();

        // Dead-strike early exit: once every strike tile has passed and
        // no corruption is pending or was ever observed (and no armed
        // core/scheduler faults exist — those vecs are never drained, so
        // any delivered non-cache fault blocks the exit forever), the
        // resumability contract guarantees the remaining tiles compute
        // exactly the golden values. Stop executing; the caller skips
        // the compare. Gated on resumable programs only (pathological
        // kernels fail via cross-tile engine state this proof ignores).
        let last_strike_tile = req.strikes.iter().map(|s| s.at_tile).max();
        let mut golden_equivalent = false;
        let prof = profiling_enabled();

        for pos in start_tile..tiles {
            if let Some((stride, budget)) = capture_plan {
                if pos % stride == 0 {
                    let _scope = phase_if(prof, PhaseId::SnapshotCapture);
                    let captured = set.push(
                        EngineSnapshot {
                            at_tile: pos,
                            mem_delta: mem.written_delta(),
                            caches: caches.clone(),
                            counters: totals,
                            l2_resident_samples,
                        },
                        budget,
                    );
                    if !captured {
                        if let Some(m) = self.metrics.as_deref() {
                            m.counter_add("radcrit_snapshot_skipped_tiles_total", &[], 1);
                        }
                    }
                }
            }

            for s in req.strikes {
                if s.at_tile == pos {
                    let resolution = self.deliver_strike(
                        s,
                        pos,
                        &plan,
                        &mut caches,
                        &mut armed_faults,
                        &mut skip_positions,
                        &mut redirects,
                        &mut unit_garbles,
                        rng,
                    );
                    strike_delivered |= resolution.delivered;
                    resolutions.push(resolution);
                }
            }

            if skip_positions.contains(&pos) {
                continue;
            }

            let effective_tile = redirects
                .iter()
                .find(|(victim, _)| *victim == pos)
                .map_or(pos, |&(_, dest)| dest);

            let mut fault = armed_faults
                .iter()
                .find(|(victim, _)| *victim == pos)
                .map_or_else(TileFault::none, |&(_, f)| f);
            if unit_garbles
                .iter()
                .any(|&from| plan.unit_garble_applies(from, pos))
            {
                fault.garble = true;
            }

            let unit = plan.unit_of(pos);
            let stats_before = caches.stats();
            let mut ctx = TileCtx::new(&mut mem, &mut caches, unit, fault);
            if let Some(log) = store_log.as_mut() {
                ctx = ctx.with_store_log(log);
            }
            {
                let _scope = phase_if(prof, PhaseId::TileExecute);
                program.execute_tile(TileId(effective_tile), &mut ctx)?;
            }
            let c = ctx.drain_counters();
            totals.ops += c.ops;
            totals.trans_ops += c.trans_ops;
            totals.loads += c.loads;
            totals.stores += c.stores;
            if let Some(tr) = trace.as_deref_mut() {
                let stats_after = caches.stats();
                tr.push(TileTrace {
                    pos,
                    unit,
                    ops: c.ops,
                    trans_ops: c.trans_ops,
                    loads: c.loads,
                    stores: c.stores,
                    l2_hits: stats_after.l2_hits - stats_before.l2_hits,
                    l2_misses: stats_after.l2_misses - stats_before.l2_misses,
                });
            }

            // Attribute this tile's output stores for the golden suffix
            // span index.
            if capture_plan.is_some() {
                if let Some(log) = store_log.as_mut() {
                    for &(s, l) in &log.spans {
                        set.output_spans.push((pos as u32, s as u32, l as u32));
                    }
                    log.spans.clear();
                }
            }

            l2_resident_samples += caches.l2_resident_lines() as f64;

            if let Some(last) = last_strike_tile {
                if resumable
                    && capture_plan.is_none()
                    && pos >= last
                    && armed_faults.is_empty()
                    && skip_positions.is_empty()
                    && redirects.is_empty()
                    && unit_garbles.is_empty()
                    && !caches.corruption_touched()
                    && !caches.has_pending_corruption()
                {
                    golden_equivalent = true;
                    if let Some(m) = self.metrics.as_deref() {
                        m.counter_add("radcrit_run_dead_strike_exits_total", &[], 1);
                    }
                    break;
                }
            }
        }

        self.phase_done("tiles", &mut phase_start);

        // End of kernel: flush the hierarchy; dirty corrupted lines write
        // their corruption back to DRAM where the host reads the output.
        let wbs = caches.flush();
        apply_writebacks(&mut mem, &wbs, store_log.as_mut());

        let output = mem.take_vec(program.output())?;
        program
            .output_shape()
            .check_len(output.len())
            .map_err(|_| {
                AccelError::InvalidConfig(format!(
                    "program {} declares an output shape not matching its buffer",
                    program.name()
                ))
            })?;

        // Hand the memory image and cache hierarchy back for the next
        // run to restore in place (the taken output buffer is the only
        // reallocation).
        if let Some(sc) = scratch.as_deref_mut() {
            if resumable {
                sc.spare = Some(mem);
                // A non-forked run's image (and written flags) no longer
                // mirror any warm state; forked runs keep their sync.
                if !forked {
                    sc.spare_origin = None;
                }
            }
        }

        // The dirty output region of a resumed run: elements this run
        // actually stored (plus corrupted write-backs) union the golden
        // suffix spans — a tile the fault skipped keeps golden-at-resume
        // bytes that the golden suffix would have overwritten, so both
        // sides are needed.
        // A forked run's store log starts at the strike tile, not the
        // bucket's resume tile — but the golden stores in between are a
        // subset of the bucket's precomputed golden spans, so the union
        // covers the same elements either way.
        let dirty = match (resumed, req.bucket_spans, req.snapshots) {
            (true, Some(pre), _) => {
                let mut spans = store_log.map(|l| l.spans).unwrap_or_default();
                spans.extend_from_slice(pre);
                Some(DirtyRegion::from_spans(spans, output.len()))
            }
            (true, None, Some(snaps)) => {
                let mut spans = store_log.map(|l| l.spans).unwrap_or_default();
                spans.extend(snaps.golden_spans_from(start_tile));
                Some(DirtyRegion::from_spans(spans, output.len()))
            }
            _ => None,
        };

        let stats = caches.stats();
        let line_bytes = caches.line_bytes() as f64;
        let profile = ExecutionProfile {
            tiles,
            threads_per_tile,
            // Per *launch* (one step of an iterative kernel): what the
            // scheduler and register file see at once (Table II).
            instantiated_threads: launch_tiles.saturating_mul(threads_per_tile),
            resident_threads: self
                .cfg
                .resident_threads(launch_tiles, threads_per_tile, local_mem),
            wave_size: plan.wave_size(),
            total_ops: totals.ops,
            transcendental_ops: totals.trans_ops,
            loads: totals.loads,
            stores: totals.stores,
            cache: stats,
            l2_avg_resident_bytes: if tiles > 0 {
                l2_resident_samples / tiles as f64 * line_bytes
            } else {
                0.0
            },
            // L1s refill constantly; approximate average occupancy as the
            // lesser of per-unit capacity and the L2 share per unit.
            l1_avg_resident_bytes: (self.cfg.l1().size_bytes as f64).min(
                l2_resident_samples / tiles.max(1) as f64 * line_bytes / self.cfg.units() as f64,
            ) * self.cfg.units() as f64,
        };

        if let Some(sc) = scratch {
            if resumable {
                sc.spare_caches = Some(caches);
            }
        }

        self.phase_done("flush", &mut phase_start);

        if capture_plan.is_some() {
            if let Some(m) = self.metrics.as_deref() {
                m.gauge_set("radcrit_snapshot_bytes", &[], set.cost_bytes() as f64);
            }
        }

        Ok((
            RunOutcome {
                output,
                profile,
                strike_delivered,
                resolutions,
                dirty,
                golden_equivalent,
            },
            set,
        ))
    }

    /// Records the elapsed phase time and restarts the clock; a no-op
    /// without an attached metrics registry.
    fn phase_done(&self, phase: &str, start: &mut Option<Instant>) {
        if let (Some(m), Some(s)) = (self.metrics.as_deref(), start.as_mut()) {
            m.observe_duration("radcrit_engine_phase_us", &[("phase", phase)], s.elapsed());
            *s = Instant::now();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_strike<R: Rng + ?Sized>(
        &self,
        strike: &StrikeSpec,
        pos: usize,
        plan: &DispatchPlan,
        caches: &mut CacheHierarchy,
        armed_faults: &mut Vec<(usize, TileFault)>,
        skip_positions: &mut Vec<usize>,
        redirects: &mut Vec<(usize, usize)>,
        unit_garbles: &mut Vec<usize>,
        rng: &mut R,
    ) -> StrikeResolution {
        let mut victim_tile = None;
        let mut unit = None;
        let mut redirect_dest = None;
        let delivered = match strike.target {
            StrikeTarget::L2 { mask } => caches.strike_l2(rng, mask).is_some(),
            StrikeTarget::L1 { mask } => {
                let u = plan.unit_of(pos);
                unit = Some(u);
                caches.strike_l1(u, rng, mask).is_some()
            }
            StrikeTarget::RegisterFile { mask, op_index } => {
                let victims = plan.pending_in_wave(pos);
                let victim = rng.gen_range(victims.start..victims.end);
                let mut f = TileFault::none();
                f.logic_at = op_index;
                f.logic_lanes = 1;
                f.logic_mask = mask;
                armed_faults.push((victim, f));
                victim_tile = Some(victim);
                true
            }
            StrikeTarget::VectorRegister {
                mask,
                lanes,
                op_index,
            } => {
                let victims = plan.pending_in_wave(pos);
                let victim = rng.gen_range(victims.start..victims.end);
                let mut f = TileFault::none();
                f.logic_at = op_index;
                f.logic_lanes = u64::from(lanes.max(1));
                f.logic_mask = mask;
                armed_faults.push((victim, f));
                victim_tile = Some(victim);
                true
            }
            StrikeTarget::Fpu { mask, op_index } => {
                let mut f = TileFault::none();
                f.logic_at = op_index;
                f.logic_lanes = 1;
                f.logic_mask = mask;
                armed_faults.push((pos, f));
                victim_tile = Some(pos);
                unit = Some(plan.unit_of(pos));
                true
            }
            StrikeTarget::Sfu { scale, op_index } => {
                let mut f = TileFault::none();
                f.sfu_at = op_index;
                f.sfu_scale = scale;
                armed_faults.push((pos, f));
                victim_tile = Some(pos);
                unit = Some(plan.unit_of(pos));
                true
            }
            StrikeTarget::CoreControl { elems, store_index } => {
                let mut f = TileFault::none();
                f.store_at = store_index;
                f.store_len = u64::from(elems.max(1));
                armed_faults.push((pos, f));
                victim_tile = Some(pos);
                unit = Some(plan.unit_of(pos));
                true
            }
            StrikeTarget::UnitGarble => {
                unit_garbles.push(pos);
                unit = Some(plan.unit_of(pos));
                true
            }
            StrikeTarget::Scheduler(effect) => {
                match effect {
                    SchedulerEffect::SkipTile => skip_positions.push(pos),
                    SchedulerEffect::RedirectTile => {
                        let dest = rng.gen_range(0..plan.tiles());
                        redirects.push((pos, dest));
                        redirect_dest = Some(dest);
                    }
                    SchedulerEffect::GarbleTile => {
                        let mut f = TileFault::none();
                        f.garble = true;
                        armed_faults.push((pos, f));
                    }
                }
                victim_tile = Some(pos);
                true
            }
        };
        StrikeResolution {
            at_tile: pos,
            site: strike.target.site_name(),
            delivered,
            victim_tile,
            unit,
            redirect_dest,
        }
    }
}

/// Parameters of one engine execution beyond the program itself.
struct RunRequest<'a> {
    strikes: &'a [StrikeSpec],
    /// Golden-prefix snapshots enabling differential resume.
    snapshots: Option<&'a SnapshotSet>,
    /// Capture snapshots during this (golden) run.
    capture: Option<SnapshotPolicy>,
    /// Per-worker reusable setup/memory state.
    scratch: Option<&'a mut RunScratch>,
    /// Fork off this warm golden state instead of restoring a snapshot.
    warm: Option<&'a WarmState>,
    /// Precomputed golden suffix spans for the warm state's bucket,
    /// replacing the per-run `golden_spans_from` walk.
    bucket_spans: Option<&'a [(usize, usize)]>,
}

impl<'a> RunRequest<'a> {
    fn plain(strikes: &'a [StrikeSpec]) -> Self {
        RunRequest {
            strikes,
            snapshots: None,
            capture: None,
            scratch: None,
            warm: None,
            bucket_spans: None,
        }
    }
}

/// An RNG that panics if consulted — used for golden runs, which must be
/// deterministic and never sample anything.
#[derive(Debug)]
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("golden runs must not consume randomness")
    }

    fn next_u64(&mut self) -> u64 {
        unreachable!("golden runs must not consume randomness")
    }

    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("golden runs must not consume randomness")
    }

    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!("golden runs must not consume randomness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_core::shape::OutputShape;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng as SmallRng;

    use crate::memory::BufferId;

    /// A minimal test program: out[i] = 2 * in[i] + 1, one tile per 8
    /// elements.
    #[derive(Debug)]
    struct Affine {
        n: usize,
        input: Vec<f64>,
        in_buf: Option<BufferId>,
        out_buf: Option<BufferId>,
    }

    impl Affine {
        fn new(n: usize) -> Self {
            Affine {
                n,
                input: (0..n).map(|i| (i + 1) as f64).collect(),
                in_buf: None,
                out_buf: None,
            }
        }
    }

    impl TiledProgram for Affine {
        fn name(&self) -> &str {
            "affine"
        }

        fn tile_count(&self) -> usize {
            self.n / 8
        }

        fn threads_per_tile(&self) -> usize {
            8
        }

        fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
            self.in_buf = Some(mem.alloc_init("in", &self.input));
            self.out_buf = Some(mem.alloc("out", self.n));
            Ok(())
        }

        fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
            let start = tile.index() * 8;
            let mut x = [0.0; 8];
            ctx.load(self.in_buf.unwrap(), start, &mut x)?;
            let mut y = [0.0; 8];
            for i in 0..8 {
                y[i] = ctx.fma(2.0, x[i], 1.0);
            }
            ctx.store(self.out_buf.unwrap(), start, &y)
        }

        fn output(&self) -> BufferId {
            self.out_buf.unwrap()
        }

        fn output_shape(&self) -> OutputShape {
            OutputShape::d1(self.n)
        }
    }

    fn expected(n: usize) -> Vec<f64> {
        (0..n).map(|i| 2.0 * (i + 1) as f64 + 1.0).collect()
    }

    #[test]
    fn golden_run_is_correct_and_deterministic() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let a = engine.golden(&mut p).unwrap();
        let b = engine.golden(&mut p).unwrap();
        assert_eq!(a.output, expected(64));
        assert_eq!(a.output, b.output);
        assert!(!a.strike_delivered);
        assert_eq!(a.profile.tiles, 8);
        assert_eq!(a.profile.total_ops, 64);
        assert_eq!(a.profile.loads, 64);
        assert_eq!(a.profile.stores, 64);
    }

    #[test]
    fn strike_past_end_rejected() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(0);
        let s = StrikeSpec::new(
            100,
            StrikeTarget::Fpu {
                mask: 1,
                op_index: 0,
            },
        );
        assert!(matches!(
            engine.run(&mut p, &s, &mut rng),
            Err(AccelError::StrikeOutOfRange {
                tile: 100,
                tiles: 8
            })
        ));
    }

    #[test]
    fn fpu_strike_corrupts_one_element() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = StrikeSpec::new(
            3,
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 2,
            },
        );
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        assert!(out.strike_delivered);
        let exp = expected(64);
        let diffs: Vec<usize> = (0..64).filter(|&i| out.output[i] != exp[i]).collect();
        assert_eq!(diffs, vec![3 * 8 + 2], "exactly op 2 of tile 3 corrupted");
        assert_eq!(out.output[26], -exp[26], "sign flip of the result");
    }

    #[test]
    fn fpu_strike_past_tile_ops_is_silent() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = StrikeSpec::new(
            0,
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 1000,
            },
        );
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        assert_eq!(out.output, expected(64), "op index beyond work is masked");
    }

    #[test]
    fn vector_strike_corrupts_lane_burst() {
        let engine = Engine::new(DeviceConfig::xeon_phi_3120a());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = StrikeSpec::new(
            7,
            StrikeTarget::VectorRegister {
                mask: 1 << 63,
                lanes: 4,
                op_index: 0,
            },
        );
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let exp = expected(64);
        let diffs: Vec<usize> = (0..64).filter(|&i| out.output[i] != exp[i]).collect();
        assert_eq!(diffs.len(), 4, "four consecutive lanes corrupted");
        assert_eq!(diffs[3] - diffs[0], 3, "burst is consecutive");
        // With 8 tiles in one Phi wave, the victim pending at position 7
        // is tile 7 itself.
        assert_eq!(diffs[0], 7 * 8);
    }

    #[test]
    fn scheduler_skip_leaves_stale_region() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(4);
        let s = StrikeSpec::new(2, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let exp = expected(64);
        for (i, (&got, &want)) in out.output.iter().zip(&exp).enumerate() {
            if (16..24).contains(&i) {
                assert_eq!(got, 0.0, "skipped tile keeps initial zeros");
            } else {
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn scheduler_garble_trashes_whole_tile() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(5);
        let s = StrikeSpec::new(5, StrikeTarget::Scheduler(SchedulerEffect::GarbleTile));
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let exp = expected(64);
        let diffs = (40..48).filter(|&i| out.output[i] != exp[i]).count();
        // Stale-value garble lets the occasional op through correctly.
        assert!(diffs >= 6, "most elements of tile 5 corrupted, got {diffs}");
        let outside = (0..64)
            .filter(|&i| !(40..48).contains(&i) && out.output[i] != exp[i])
            .count();
        assert_eq!(outside, 0);
    }

    #[test]
    fn scheduler_redirect_overwrites_other_tile_region() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(6);
        let s = StrikeSpec::new(1, StrikeTarget::Scheduler(SchedulerEffect::RedirectTile));
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let exp = expected(64);
        // Tile 1's own region was never written by tile 1: it is either
        // zero (stale) or correct (if the redirect destination was tile 1
        // itself or a later tile overwrote it).
        let region_ok_or_stale = (8..16).all(|i| out.output[i] == exp[i] || out.output[i] == 0.0);
        assert!(region_ok_or_stale);
    }

    #[test]
    fn l2_strike_on_input_corrupts_consumers_but_not_dram() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(7);
        // Strike early so later tiles read corrupted input.
        let s = StrikeSpec::new(1, StrikeTarget::L2 { mask: 1 << 62 });
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        assert!(out.strike_delivered);
        let exp = expected(64);
        let diffs = (0..64).filter(|&i| out.output[i] != exp[i]).count();
        // The strike lands on input or output data; input corruption
        // propagates to at most the elements reading the line after the
        // strike; output corruption persists via dirty write-back.
        assert!(
            diffs <= 16,
            "single line bounds the corruption, got {diffs}"
        );
    }

    #[test]
    fn multi_strike_accumulates_independent_corruptions() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(21);
        let strikes = vec![
            StrikeSpec::new(
                1,
                StrikeTarget::Fpu {
                    mask: 1 << 63,
                    op_index: 0,
                },
            ),
            StrikeSpec::new(
                4,
                StrikeTarget::Fpu {
                    mask: 1 << 63,
                    op_index: 3,
                },
            ),
            StrikeSpec::new(6, StrikeTarget::Scheduler(SchedulerEffect::SkipTile)),
        ];
        let out = engine.run_multi(&mut p, &strikes, &mut rng).unwrap();
        let exp = expected(64);
        let diffs: Vec<usize> = (0..64).filter(|&i| out.output[i] != exp[i]).collect();
        // Two single-op flips plus one skipped 8-element tile.
        assert_eq!(diffs.len(), 2 + 8, "diffs: {diffs:?}");
        assert!(diffs.contains(&8), "op 0 of tile 1");
        assert!(diffs.contains(&35), "op 3 of tile 4");
        assert!((48..56).all(|i| diffs.contains(&i)), "tile 6 skipped");
    }

    #[test]
    fn strike_at_last_tile_is_legal() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(23);
        let s = StrikeSpec::new(7, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let exp = expected(64);
        assert!((56..64).all(|i| out.output[i] == 0.0));
        assert!((0..56).all(|i| out.output[i] == exp[i]));
    }

    #[test]
    fn faulty_run_profile_matches_golden_profile_shape() {
        // Skipping a tile reduces counted work; everything else in the
        // profile stays structurally identical.
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let golden = engine.golden(&mut p).unwrap();
        let mut rng = SmallRng::seed_from_u64(24);
        let s = StrikeSpec::new(0, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
        let faulty = engine.run(&mut p, &s, &mut rng).unwrap();
        assert_eq!(faulty.profile.tiles, golden.profile.tiles);
        assert_eq!(faulty.profile.wave_size, golden.profile.wave_size);
        assert_eq!(faulty.profile.total_ops, golden.profile.total_ops - 8);
    }

    #[test]
    fn empty_strike_list_equals_golden() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(22);
        let out = engine.run_multi(&mut p, &[], &mut rng).unwrap();
        assert_eq!(out.output, expected(64));
        assert!(!out.strike_delivered);
    }

    #[test]
    fn resolutions_report_strike_victims() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = StrikeSpec::new(
            3,
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 2,
            },
        );
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        assert_eq!(out.resolutions.len(), 1);
        let r = out.resolutions[0];
        assert_eq!(r.at_tile, 3);
        assert_eq!(r.site, "fpu");
        assert!(r.delivered);
        assert_eq!(r.victim_tile, Some(3));
        assert_eq!(r.redirect_dest, None);
        assert!(engine.golden(&mut p).unwrap().resolutions.is_empty());
    }

    #[test]
    fn redirect_resolution_names_the_destination() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(6);
        let s = StrikeSpec::new(1, StrikeTarget::Scheduler(SchedulerEffect::RedirectTile));
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let r = out.resolutions[0];
        assert_eq!(r.site, "scheduler");
        let dest = r.redirect_dest.expect("redirect resolves a destination");
        assert!(dest < 8);
    }

    #[test]
    fn register_strike_resolution_matches_corrupted_region() {
        // The resolution's victim tile is the engine's own account of
        // where the RNG sent the strike; the output corruption must land
        // in exactly that tile's region.
        let engine = Engine::new(DeviceConfig::xeon_phi_3120a());
        let mut p = Affine::new(64);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = StrikeSpec::new(
            7,
            StrikeTarget::VectorRegister {
                mask: 1 << 63,
                lanes: 4,
                op_index: 0,
            },
        );
        let out = engine.run(&mut p, &s, &mut rng).unwrap();
        let victim = out.resolutions[0].victim_tile.unwrap();
        let exp = expected(64);
        let diffs: Vec<usize> = (0..64).filter(|&i| out.output[i] != exp[i]).collect();
        assert!(
            diffs.iter().all(|&i| i / 8 == victim),
            "{diffs:?} vs {victim}"
        );
    }

    #[test]
    fn traced_run_matches_untraced_output_and_rng_stream() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let s = StrikeSpec::new(
            2,
            StrikeTarget::RegisterFile {
                mask: 1 << 60,
                op_index: 1,
            },
        );
        let mut rng_a = SmallRng::seed_from_u64(42);
        let plain = engine.run(&mut p, &s, &mut rng_a).unwrap();
        let mut rng_b = SmallRng::seed_from_u64(42);
        let (traced, trace) = engine.run_traced(&mut p, &s, &mut rng_b).unwrap();
        assert_eq!(plain.output, traced.output);
        assert_eq!(plain.resolutions, traced.resolutions);
        assert_eq!(trace.tiles().len(), 8);
    }

    #[test]
    fn metrics_record_phases_and_plan_geometry() {
        let metrics = std::sync::Arc::new(MetricsRegistry::new());
        let engine = Engine::new(DeviceConfig::kepler_k40()).with_metrics(metrics.clone());
        let mut p = Affine::new(64);
        engine.golden(&mut p).unwrap();
        engine.golden(&mut p).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("radcrit_engine_runs_total", &[]), Some(2));
        assert_eq!(snap.gauge("radcrit_plan_tiles", &[]), Some(8.0));
        for phase in ["setup", "tiles", "flush"] {
            let h = snap
                .histogram("radcrit_engine_phase_us", &[("phase", phase)])
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert_eq!(h.count(), 2);
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn snapshotted_golden_matches_plain_golden() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let plain = engine.golden(&mut p).unwrap();
        let (snapped, set) = engine
            .golden_snapshotted(&mut p, &SnapshotPolicy::default())
            .unwrap();
        assert_eq!(bits(&plain.output), bits(&snapped.output));
        assert_eq!(plain.profile, snapped.profile);
        assert!(!set.is_empty(), "default policy captures snapshots");
        assert!(set.cost_bytes() > 0);
        assert!(
            !set.output_spans.is_empty(),
            "golden stores to the output are indexed"
        );
    }

    #[test]
    fn explicit_stride_controls_capture_points() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64); // 8 tiles
        let policy = SnapshotPolicy {
            stride: 2,
            max_bytes: 0,
        };
        let (_, set) = engine.golden_snapshotted(&mut p, &policy).unwrap();
        assert_eq!(set.len(), 4, "tiles 0, 2, 4, 6");
        assert_eq!(set.skipped_tiles(), 0);
    }

    #[test]
    fn tiny_budget_skips_captures() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let policy = SnapshotPolicy {
            stride: 1,
            max_bytes: 1,
        };
        let (_, set) = engine.golden_snapshotted(&mut p, &policy).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.skipped_tiles(), 8);
    }

    #[test]
    fn resumed_run_is_bit_identical_across_targets() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let (_, set) = engine
            .golden_snapshotted(
                &mut p,
                &SnapshotPolicy {
                    stride: 3,
                    max_bytes: 0,
                },
            )
            .unwrap();
        let targets = [
            StrikeTarget::L2 { mask: 1 << 62 },
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 2,
            },
            StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
            StrikeTarget::Scheduler(SchedulerEffect::SkipTile),
            StrikeTarget::UnitGarble,
        ];
        for (i, target) in targets.iter().enumerate() {
            for at_tile in [0, 4, 7] {
                let s = StrikeSpec::new(at_tile, *target);
                let seed = 100 + i as u64;
                let mut rng_full = SmallRng::seed_from_u64(seed);
                let full = engine.run(&mut p, &s, &mut rng_full).unwrap();
                let mut rng_diff = SmallRng::seed_from_u64(seed);
                let diff = engine.run_from(&mut p, &s, &mut rng_diff, &set).unwrap();
                assert_eq!(
                    bits(&full.output),
                    bits(&diff.output),
                    "{target:?}@{at_tile}"
                );
                assert_eq!(full.resolutions, diff.resolutions);
                assert_eq!(full.profile, diff.profile);
                assert_eq!(full.strike_delivered, diff.strike_delivered);
                // The dirty region must cover every mismatch vs golden.
                let dirty = diff.dirty.expect("resumed run reports its dirty region");
                let golden = engine.golden(&mut p).unwrap();
                for idx in 0..full.output.len() {
                    if full.output[idx].to_bits() != golden.output[idx].to_bits() {
                        assert!(dirty.contains(idx), "{target:?}@{at_tile}: idx {idx} dirty");
                    }
                }
            }
        }
    }

    #[test]
    fn forked_run_is_bit_identical_to_full_and_resumed_runs() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let (_, set) = engine
            .golden_snapshotted(
                &mut p,
                &SnapshotPolicy {
                    stride: 3,
                    max_bytes: 0,
                },
            )
            .unwrap();
        let golden = engine.golden(&mut p).unwrap();
        let targets = [
            StrikeTarget::L2 { mask: 1 << 62 },
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 2,
            },
            StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
            StrikeTarget::Scheduler(SchedulerEffect::SkipTile),
            StrikeTarget::UnitGarble,
        ];
        let mut scratch = RunScratch::new();
        let mut warm: Option<WarmState> = None;
        for (i, target) in targets.iter().enumerate() {
            // Ascending strike tiles within one bucket: the warm state
            // advances monotonically like the batch scheduler drives it.
            for at_tile in [3, 5, 7] {
                let s = StrikeSpec::new(at_tile, *target);
                let seed = 300 + i as u64;
                let mut rng_full = SmallRng::seed_from_u64(seed);
                let full = engine.run(&mut p, &s, &mut rng_full).unwrap();
                let mut rng_diff = SmallRng::seed_from_u64(seed);
                let diff = engine.run_from(&mut p, &s, &mut rng_diff, &set).unwrap();

                let need_restore = match warm.as_ref() {
                    Some(w) => {
                        w.resume_tile() != set.resume_tile(at_tile).unwrap()
                            || w.next_tile() > at_tile
                    }
                    None => true,
                };
                if need_restore {
                    warm = engine
                        .warm_restore(&mut p, &set, at_tile, &mut scratch, warm.take())
                        .unwrap();
                }
                let w = warm.as_mut().unwrap();
                engine.warm_advance(&mut p, w, at_tile).unwrap();
                let spans: Vec<_> = set.golden_spans_from(w.resume_tile()).collect();
                let mut rng_fork = SmallRng::seed_from_u64(seed);
                let fork = engine
                    .run_forked(&mut p, &s, &mut rng_fork, w, &spans, &mut scratch)
                    .unwrap();

                assert_eq!(
                    bits(&full.output),
                    bits(&fork.output),
                    "{target:?}@{at_tile}"
                );
                assert_eq!(full.resolutions, fork.resolutions);
                assert_eq!(full.profile, fork.profile);
                assert_eq!(full.strike_delivered, fork.strike_delivered);
                // The forked dirty region equals the unbatched one: both
                // canonicalize the same covered element set.
                assert_eq!(
                    diff.dirty.as_ref().unwrap().ranges(),
                    fork.dirty.as_ref().unwrap().ranges(),
                    "{target:?}@{at_tile}"
                );
                for idx in 0..full.output.len() {
                    if full.output[idx].to_bits() != golden.output[idx].to_bits() {
                        assert!(
                            fork.dirty.as_ref().unwrap().contains(idx),
                            "{target:?}@{at_tile}: idx {idx} dirty"
                        );
                    }
                }
            }
            warm = None; // next target restarts the bucket
        }
    }

    #[test]
    fn fork_before_warm_front_is_rejected() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let (_, set) = engine
            .golden_snapshotted(
                &mut p,
                &SnapshotPolicy {
                    stride: 2,
                    max_bytes: 0,
                },
            )
            .unwrap();
        let mut scratch = RunScratch::new();
        let mut warm = engine
            .warm_restore(&mut p, &set, 6, &mut scratch, None)
            .unwrap()
            .unwrap();
        engine.warm_advance(&mut p, &mut warm, 6).unwrap();
        let s = StrikeSpec::new(
            5,
            StrikeTarget::Fpu {
                mask: 1,
                op_index: 0,
            },
        );
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            engine.run_forked(&mut p, &s, &mut rng, &warm, &[], &mut scratch),
            Err(AccelError::StrikeOutOfRange { tile: 5, tiles: 6 })
        ));
    }

    #[test]
    fn warm_restore_refuses_non_covered_or_non_resumable() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let set = SnapshotSet::default();
        let mut scratch = RunScratch::new();
        assert!(engine
            .warm_restore(&mut p, &set, 7, &mut scratch, None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn scratch_reuse_keeps_runs_identical() {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Affine::new(64);
        let (_, set) = engine
            .golden_snapshotted(&mut p, &SnapshotPolicy::default())
            .unwrap();
        let s = StrikeSpec::new(
            5,
            StrikeTarget::Fpu {
                mask: 1 << 63,
                op_index: 1,
            },
        );
        let mut scratch = RunScratch::new();
        for _ in 0..3 {
            let mut rng_a = SmallRng::seed_from_u64(9);
            let a = engine
                .run_injection(&mut p, &s, &mut rng_a, Some(&set), &mut scratch)
                .unwrap();
            let mut rng_b = SmallRng::seed_from_u64(9);
            let b = engine.run(&mut p, &s, &mut rng_b).unwrap();
            assert_eq!(bits(&a.output), bits(&b.output));
            assert_eq!(a.profile, b.profile);
        }
        // Scratch also serves full (non-resumed) runs without snapshots.
        let mut rng_a = SmallRng::seed_from_u64(11);
        let a = engine
            .run_injection(&mut p, &s, &mut rng_a, None, &mut scratch)
            .unwrap();
        let mut rng_b = SmallRng::seed_from_u64(11);
        let b = engine.run(&mut p, &s, &mut rng_b).unwrap();
        assert_eq!(bits(&a.output), bits(&b.output));
        assert!(a.dirty.is_none(), "full runs have no dirty region");
    }

    #[test]
    fn non_resumable_program_gets_no_snapshots_and_full_runs() {
        /// Affine with per-run observable state, like the pathological
        /// test kernel.
        #[derive(Debug)]
        struct Stateful(Affine);
        impl TiledProgram for Stateful {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn tile_count(&self) -> usize {
                self.0.tile_count()
            }
            fn threads_per_tile(&self) -> usize {
                self.0.threads_per_tile()
            }
            fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
                self.0.setup(mem)
            }
            fn execute_tile(
                &mut self,
                tile: TileId,
                ctx: &mut TileCtx<'_>,
            ) -> Result<(), AccelError> {
                self.0.execute_tile(tile, ctx)
            }
            fn output(&self) -> BufferId {
                self.0.output()
            }
            fn output_shape(&self) -> OutputShape {
                self.0.output_shape()
            }
            fn resumable(&self) -> bool {
                false
            }
        }
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut p = Stateful(Affine::new(64));
        let (out, set) = engine
            .golden_snapshotted(&mut p, &SnapshotPolicy::default())
            .unwrap();
        assert!(set.is_empty());
        assert_eq!(out.output, expected(64));
        // Passing a foreign snapshot set must not resume either.
        let mut donor = Affine::new(64);
        let (_, donor_set) = engine
            .golden_snapshotted(&mut donor, &SnapshotPolicy::default())
            .unwrap();
        let s = StrikeSpec::new(7, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
        let mut rng = SmallRng::seed_from_u64(3);
        let run = engine.run_from(&mut p, &s, &mut rng, &donor_set).unwrap();
        assert!(run.dirty.is_none(), "non-resumable programs run full");
    }

    #[test]
    fn resumed_metrics_counted() {
        let metrics = std::sync::Arc::new(MetricsRegistry::new());
        let engine = Engine::new(DeviceConfig::kepler_k40()).with_metrics(metrics.clone());
        let mut p = Affine::new(64);
        let (_, set) = engine
            .golden_snapshotted(&mut p, &SnapshotPolicy::default())
            .unwrap();
        let s = StrikeSpec::new(
            6,
            StrikeTarget::Fpu {
                mask: 1,
                op_index: 0,
            },
        );
        let mut rng = SmallRng::seed_from_u64(4);
        engine.run_from(&mut p, &s, &mut rng, &set).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("radcrit_engine_resumed_runs_total", &[]),
            Some(1)
        );
        assert!(snap.gauge("radcrit_snapshot_bytes", &[]).unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn profile_reflects_memory_traffic() {
        let engine = Engine::new(DeviceConfig::xeon_phi_3120a());
        let mut p = Affine::new(128);
        let out = engine.golden(&mut p).unwrap();
        assert_eq!(out.profile.loads, 128);
        assert_eq!(out.profile.stores, 128);
        assert!(out.profile.cache.l2_misses > 0);
        assert!(out.profile.l2_avg_resident_bytes > 0.0);
        assert_eq!(out.profile.wave_size, 57); // 4-thread tiles, 4 hw threads/core... one tile per core
    }
}
