//! Per-tile execution traces.
//!
//! A trace records what every tile did — arithmetic volume, memory
//! traffic, cache behaviour, assigned unit — letting analyses *measure*
//! the workload properties Table I of the paper asserts: compute- versus
//! memory-bound (operational intensity), load balance (per-unit and
//! per-tile spread), and the AMR-style variation of work across launches.

use serde::{Deserialize, Serialize};

/// What one tile did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTrace {
    /// Dispatch position.
    pub pos: usize,
    /// Executing unit.
    pub unit: usize,
    /// Arithmetic operations.
    pub ops: u64,
    /// Transcendental operations.
    pub trans_ops: u64,
    /// Elements loaded.
    pub loads: u64,
    /// Elements stored.
    pub stores: u64,
    /// L2 hits observed during the tile.
    pub l2_hits: u64,
    /// L2 misses observed during the tile.
    pub l2_misses: u64,
}

/// The trace of one full execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    tiles: Vec<TileTrace>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, t: TileTrace) {
        self.tiles.push(t);
    }

    /// All tile records in dispatch order.
    pub fn tiles(&self) -> &[TileTrace] {
        &self.tiles
    }

    /// Total arithmetic ops.
    pub fn total_ops(&self) -> u64 {
        self.tiles.iter().map(|t| t.ops).sum()
    }

    /// Ops aggregated per unit.
    pub fn ops_per_unit(&self) -> Vec<u64> {
        let units = self.tiles.iter().map(|t| t.unit).max().map_or(0, |u| u + 1);
        let mut out = vec![0u64; units];
        for t in &self.tiles {
            out[t.unit] += t.ops;
        }
        out
    }

    /// Load imbalance across units: max over mean of per-unit ops
    /// (1.0 = perfectly balanced). The measured version of Table I's
    /// "Load Balance" column.
    pub fn unit_imbalance(&self) -> f64 {
        let per_unit = self.ops_per_unit();
        let busy: Vec<u64> = per_unit.into_iter().filter(|&o| o > 0).collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        max / mean
    }

    /// Coefficient of variation of per-tile ops (0 = every tile does the
    /// same work). Border effects (LavaMD) and AMR activity windows
    /// (CLAMR) show up here.
    pub fn tile_cv(&self) -> f64 {
        if self.tiles.len() < 2 {
            return 0.0;
        }
        let n = self.tiles.len() as f64;
        let mean = self.total_ops() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .tiles
            .iter()
            .map(|t| {
                let d = t.ops as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1.0);
        var.sqrt() / mean
    }

    /// Operational intensity: ops per element moved (loads + stores).
    /// Low values mean memory-bound (Table I's "Bound by" column, via the
    /// roofline argument the paper cites).
    pub fn operational_intensity(&self) -> f64 {
        let moved: u64 = self.tiles.iter().map(|t| t.loads + t.stores).sum();
        if moved == 0 {
            f64::INFINITY
        } else {
            self.total_ops() as f64 / moved as f64
        }
    }

    /// L2 hit rate over the whole run.
    pub fn l2_hit_rate(&self) -> f64 {
        let hits: u64 = self.tiles.iter().map(|t| t.l2_hits).sum();
        let total: u64 = self.tiles.iter().map(|t| t.l2_hits + t.l2_misses).sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pos: usize, unit: usize, ops: u64, loads: u64) -> TileTrace {
        TileTrace {
            pos,
            unit,
            ops,
            trans_ops: 0,
            loads,
            stores: 0,
            l2_hits: ops / 2,
            l2_misses: ops / 2,
        }
    }

    #[test]
    fn balanced_trace_has_unit_imbalance_one() {
        let mut tr = ExecutionTrace::new();
        for i in 0..8 {
            tr.push(t(i, i % 4, 100, 10));
        }
        assert!((tr.unit_imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(tr.tile_cv(), 0.0);
        assert_eq!(tr.total_ops(), 800);
    }

    #[test]
    fn imbalanced_trace_detected() {
        let mut tr = ExecutionTrace::new();
        tr.push(t(0, 0, 1000, 10));
        tr.push(t(1, 1, 100, 10));
        assert!(tr.unit_imbalance() > 1.5);
        assert!(tr.tile_cv() > 0.5);
    }

    #[test]
    fn operational_intensity_ratio() {
        let mut tr = ExecutionTrace::new();
        tr.push(t(0, 0, 100, 50));
        assert!((tr.operational_intensity() - 2.0).abs() < 1e-12);
        let empty = ExecutionTrace::new();
        assert!(empty.operational_intensity().is_infinite());
    }

    #[test]
    fn l2_hit_rate_aggregates() {
        let mut tr = ExecutionTrace::new();
        tr.push(t(0, 0, 100, 10)); // 50/50
        assert!((tr.l2_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_degenerate_but_defined() {
        let tr = ExecutionTrace::new();
        assert_eq!(tr.unit_imbalance(), 1.0);
        assert_eq!(tr.tile_cv(), 0.0);
        assert_eq!(tr.l2_hit_rate(), 0.0);
    }
}
