//! Golden-prefix machine snapshots for differential injection execution.
//!
//! Execution is deterministic and a strike perturbs nothing before its
//! tile, so every faulty run's machine state at tile `r` is *bit-equal*
//! to the golden run's state at `r` for any `r ≤ strike.at_tile`. A
//! [`SnapshotSet`] captures that state (device memory, cache hierarchy,
//! running counters) at a tile stride during the golden run; an
//! injection then resumes from the nearest snapshot at or before its
//! strike tile instead of re-executing the whole prefix — see
//! `Engine::run_from`.
//!
//! Snapshots are byte-bounded: a [`SnapshotPolicy`] caps the whole set,
//! and capture points that would exceed the budget are skipped (and
//! counted), never silently truncating correctness — a strike landing
//! before the first usable snapshot simply falls back to a full run.

use crate::cache::CacheHierarchy;
use crate::memory::BufferId;
use crate::program::MachineCounters;

/// Default byte budget for one program's snapshot set. Kept below the
/// golden cache's default budget (64 MiB) so snapshot-carrying entries
/// stay cacheable; deltas (not full images) make this budget admit a
/// dense stride even for the largest paper kernels.
pub const DEFAULT_SNAPSHOT_BYTES: usize = 32 * 1024 * 1024;

/// Rough fixed overhead accounted per captured snapshot.
const SNAPSHOT_OVERHEAD_BYTES: usize = 4096;

/// How `Engine::golden_snapshotted` captures snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotPolicy {
    /// Tiles between snapshots; `0` derives the stride from the byte
    /// budget (as many evenly spaced snapshots as fit).
    pub stride: usize,
    /// Byte budget for the whole set; `0` means
    /// [`DEFAULT_SNAPSHOT_BYTES`].
    pub max_bytes: usize,
}

impl SnapshotPolicy {
    pub(crate) fn budget(&self) -> usize {
        if self.max_bytes == 0 {
            DEFAULT_SNAPSHOT_BYTES
        } else {
            self.max_bytes
        }
    }
}

/// Machine state captured immediately before one tile of the golden run
/// executed: resuming from it and executing tiles `at_tile..` replays
/// the golden run's suffix exactly.
///
/// Device memory is stored as a *delta* against the post-setup template:
/// only buffers written since setup (a golden run mutates memory solely
/// through program stores — there are no corrupted write-backs). The
/// engine rebuilds the full image as template ∪ delta on resume, so
/// read-only inputs are never duplicated per snapshot.
#[derive(Debug, Clone)]
pub(crate) struct EngineSnapshot {
    pub(crate) at_tile: usize,
    pub(crate) mem_delta: Vec<(BufferId, Vec<f64>)>,
    pub(crate) caches: CacheHierarchy,
    pub(crate) counters: MachineCounters,
    pub(crate) l2_resident_samples: f64,
}

/// A byte-bounded set of golden-prefix snapshots plus the golden run's
/// per-tile output-store spans (needed to bound the dirty output region
/// of a resumed faulty run).
#[derive(Debug, Clone, Default)]
pub struct SnapshotSet {
    pub(crate) snaps: Vec<EngineSnapshot>,
    /// Golden stores into the output buffer as `(tile, start, len)`
    /// element spans, ascending by tile.
    pub(crate) output_spans: Vec<(u32, u32, u32)>,
    pub(crate) bytes: usize,
    pub(crate) skipped_tiles: u64,
}

impl SnapshotSet {
    /// Number of captured snapshots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshot was captured (non-resumable program, zero
    /// tiles, or a budget too small for even one snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Approximate bytes this set occupies, for cache accounting.
    #[must_use]
    pub fn cost_bytes(&self) -> usize {
        self.bytes + self.output_spans.len() * 12
    }

    /// Capture points skipped because they would have exceeded the byte
    /// budget.
    #[must_use]
    pub fn skipped_tiles(&self) -> u64 {
        self.skipped_tiles
    }

    /// The snapshot with the greatest `at_tile` that is `<= tile`, if
    /// any.
    pub(crate) fn resume_point(&self, tile: usize) -> Option<&EngineSnapshot> {
        let i = self.snaps.partition_point(|s| s.at_tile <= tile);
        self.snaps[..i].last()
    }

    /// The tile of the snapshot a strike at `tile` would resume from:
    /// the greatest captured `at_tile <= tile`. This is the batch
    /// scheduler's bucket key — strikes sharing a resume tile share one
    /// warm restore.
    #[must_use]
    pub fn resume_tile(&self, tile: usize) -> Option<usize> {
        self.resume_point(tile).map(|s| s.at_tile)
    }

    /// Golden output-store spans of tiles `>= tile`, as `(start, len)`
    /// element spans. Unioned with a faulty run's own store log these
    /// bound the dirty output region of any run resumed at `tile`.
    pub fn golden_spans_from(&self, tile: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let i = self
            .output_spans
            .partition_point(|&(t, _, _)| (t as usize) < tile);
        self.output_spans[i..]
            .iter()
            .map(|&(_, s, l)| (s as usize, l as usize))
    }

    pub(crate) fn push(&mut self, snap: EngineSnapshot, budget: usize) -> bool {
        let delta_bytes: usize = snap.mem_delta.iter().map(|(_, d)| d.len() * 8).sum();
        let cost = delta_bytes + snap.caches.approx_heap_bytes() + SNAPSHOT_OVERHEAD_BYTES;
        if self.bytes + cost > budget {
            self.skipped_tiles += 1;
            return false;
        }
        self.bytes += cost;
        self.snaps.push(snap);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_tile: usize) -> EngineSnapshot {
        EngineSnapshot {
            at_tile,
            mem_delta: Vec::new(),
            caches: CacheHierarchy::new(&crate::config::DeviceConfig::kepler_k40()),
            counters: MachineCounters::default(),
            l2_resident_samples: 0.0,
        }
    }

    #[test]
    fn resume_point_picks_nearest_at_or_before() {
        let mut set = SnapshotSet::default();
        for t in [0, 8, 16] {
            assert!(set.push(snap(t), usize::MAX));
        }
        assert_eq!(set.resume_point(0).unwrap().at_tile, 0);
        assert_eq!(set.resume_point(7).unwrap().at_tile, 0);
        assert_eq!(set.resume_point(8).unwrap().at_tile, 8);
        assert_eq!(set.resume_point(100).unwrap().at_tile, 16);
    }

    #[test]
    fn budget_skips_and_counts() {
        let mut set = SnapshotSet::default();
        assert!(set.push(snap(0), usize::MAX));
        let used = set.bytes;
        assert!(!set.push(snap(8), used), "second capture exceeds budget");
        assert_eq!(set.len(), 1);
        assert_eq!(set.skipped_tiles(), 1);
    }

    #[test]
    fn whole_schedule_over_budget_counts_every_capture_point() {
        // A budget too small for even one snapshot must skip (and count)
        // every capture point while keeping the set empty and free.
        let mut set = SnapshotSet::default();
        for t in [0, 4, 8, 12] {
            assert!(!set.push(snap(t), 1));
        }
        assert!(set.is_empty());
        assert_eq!(set.skipped_tiles(), 4);
        assert_eq!(set.bytes, 0, "skipped captures must not be charged");
        assert_eq!(set.cost_bytes(), 0);
        assert_eq!(set.resume_tile(100), None);
    }

    #[test]
    fn cost_bytes_charges_snapshots_once_plus_span_index() {
        // `cost_bytes` = accumulated per-snapshot cost (each capture
        // charged exactly once at push time) + 12 bytes per output span.
        let mut set = SnapshotSet::default();
        let mut per_push = Vec::new();
        for t in [0, 8] {
            let before = set.bytes;
            assert!(set.push(snap(t), usize::MAX));
            per_push.push(set.bytes - before);
        }
        assert_eq!(set.bytes, per_push.iter().sum::<usize>());
        assert_eq!(set.cost_bytes(), set.bytes);
        let mut with_spans = set.clone();
        with_spans.output_spans = vec![(0, 0, 8), (1, 8, 8)];
        assert_eq!(with_spans.cost_bytes(), set.bytes + 2 * 12);
    }

    #[test]
    fn resume_tile_matches_resume_point() {
        let mut set = SnapshotSet::default();
        for t in [2, 8, 16] {
            assert!(set.push(snap(t), usize::MAX));
        }
        assert_eq!(set.resume_tile(0), None);
        assert_eq!(set.resume_tile(2), Some(2));
        assert_eq!(set.resume_tile(9), Some(8));
        assert_eq!(set.resume_tile(100), Some(16));
    }

    #[test]
    fn golden_spans_filtered_by_tile() {
        let set = SnapshotSet {
            output_spans: vec![(0, 0, 8), (1, 8, 8), (3, 24, 8)],
            ..SnapshotSet::default()
        };
        let from1: Vec<_> = set.golden_spans_from(1).collect();
        assert_eq!(from1, vec![(8, 8), (24, 8)]);
        assert_eq!(set.golden_spans_from(4).count(), 0);
    }
}
