//! Device memory: flat `f64` buffers addressed by `(buffer, element)`.
//!
//! The boards' GDDR5 sits outside the beam spot (§IV-D: "data stored in
//! the main memory is not to be corrupted"), so the backing store here is
//! *never* struck directly; corruption enters only through the cache
//! hierarchy and functional units and persists in memory only via
//! write-back of dirty corrupted lines (see [`crate::cache`]).

use radcrit_core::exec;
use serde::{Deserialize, Serialize};

use crate::error::AccelError;

/// Identifies one allocation in [`DeviceMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// The raw allocation index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A global element address: which buffer and which element within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElemAddr {
    /// The buffer containing the element.
    pub buffer: BufferId,
    /// The element index within the buffer.
    pub index: usize,
}

/// Simulated device DRAM holding named `f64` allocations.
///
/// # Examples
///
/// ```
/// use radcrit_accel::memory::DeviceMemory;
///
/// let mut mem = DeviceMemory::new();
/// let buf = mem.alloc("matrix", 16);
/// mem.write(buf, 3, 2.5)?;
/// assert_eq!(mem.read(buf, 3)?, 2.5);
/// # Ok::<(), radcrit_accel::AccelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    buffers: Vec<Buffer>,
}

#[derive(Debug, Clone)]
struct Buffer {
    name: String,
    data: Vec<f64>,
    /// Byte offset of this buffer in the flat device address space; used
    /// by the cache model to derive line addresses.
    base_addr: usize,
    /// Whether the buffer was written since the last
    /// [`DeviceMemory::reset_write_tracking`]; lets golden-prefix
    /// snapshots store only the buffers that diverged from the
    /// post-setup template.
    written: bool,
}

impl DeviceMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    ///
    /// Buffers are laid out consecutively in a flat byte address space,
    /// aligned to 256 bytes like real GDDR5 allocations, so that distinct
    /// buffers never share a cache line.
    pub fn alloc(&mut self, name: impl Into<String>, len: usize) -> BufferId {
        const ALIGN: usize = 256;
        let base_addr = self
            .buffers
            .last()
            .map(|b| {
                let end = b.base_addr + b.data.len() * 8;
                end.div_ceil(ALIGN) * ALIGN
            })
            .unwrap_or(0);
        let id = BufferId(self.buffers.len());
        self.buffers.push(Buffer {
            name: name.into(),
            data: vec![0.0; len],
            base_addr,
            written: true,
        });
        id
    }

    /// Allocates a buffer initialized from `data`.
    pub fn alloc_init(&mut self, name: impl Into<String>, data: &[f64]) -> BufferId {
        let id = self.alloc(name, data.len());
        self.buffers[id.0].data.copy_from_slice(data);
        id
    }

    /// Reads one element.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn read(&self, buf: BufferId, index: usize) -> Result<f64, AccelError> {
        let b = self.buffer(buf)?;
        b.data.get(index).copied().ok_or(AccelError::OutOfBounds {
            buffer: buf.0,
            index,
            len: b.data.len(),
        })
    }

    /// Writes one element.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn write(&mut self, buf: BufferId, index: usize, value: f64) -> Result<(), AccelError> {
        let b = self.buffer_mut(buf)?;
        b.written = true;
        let len = b.data.len();
        match b.data.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(AccelError::OutOfBounds {
                buffer: buf.0,
                index,
                len,
            }),
        }
    }

    /// XORs `mask` into the bit pattern of one element — the primitive a
    /// particle strike reduces to.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn flip_bits(&mut self, buf: BufferId, index: usize, mask: u64) -> Result<(), AccelError> {
        let v = self.read(buf, index)?;
        self.write(buf, index, f64::from_bits(v.to_bits() ^ mask))
    }

    /// Borrows a whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn slice(&self, buf: BufferId) -> Result<&[f64], AccelError> {
        Ok(&self.buffer(buf)?.data)
    }

    /// Mutably borrows a whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn slice_mut(&mut self, buf: BufferId) -> Result<&mut [f64], AccelError> {
        let b = self.buffer_mut(buf)?;
        b.written = true;
        Ok(&mut b.data)
    }

    /// Copies a buffer out as an owned vector.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn to_vec(&self, buf: BufferId) -> Result<Vec<f64>, AccelError> {
        Ok(self.buffer(buf)?.data.clone())
    }

    /// Moves a buffer's contents out without copying, leaving the buffer
    /// empty (length 0). The engine uses this to return the output; a
    /// later [`DeviceMemory::restore_from`] re-materializes the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn take_vec(&mut self, buf: BufferId) -> Result<Vec<f64>, AccelError> {
        let b = self.buffer_mut(buf)?;
        b.written = true;
        Ok(std::mem::take(&mut b.data))
    }

    /// Marks every buffer clean; subsequent writes set the per-buffer
    /// written flag read back by [`DeviceMemory::written_delta`].
    pub fn reset_write_tracking(&mut self) {
        for b in &mut self.buffers {
            b.written = false;
        }
    }

    /// Clones the buffers written since the last
    /// [`DeviceMemory::reset_write_tracking`]. Together with the
    /// post-setup image they reconstruct this memory exactly — kernels
    /// typically write a small subset of their footprint (inputs are
    /// read-only), so a delta snapshot is far cheaper than a full clone.
    pub fn written_delta(&self) -> Vec<(BufferId, Vec<f64>)> {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.written)
            .map(|(i, b)| {
                // Capture on the SIMD execution core: reserve + copy
                // instead of `clone`, so delta capture, apply and
                // restore all route through the same primitive.
                let mut data = vec![0.0; b.data.len()];
                exec::copy_f64(&b.data, &mut data);
                (BufferId(i), data)
            })
            .collect()
    }

    /// Overwrites the buffers named by `delta` (see
    /// [`DeviceMemory::written_delta`]), reusing their allocations when
    /// lengths match.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] when a delta entry names a
    /// buffer this memory does not have.
    pub fn apply_delta(&mut self, delta: &[(BufferId, Vec<f64>)]) -> Result<(), AccelError> {
        for (buf, data) in delta {
            let b = self.buffer_mut(*buf)?;
            b.written = true;
            if b.data.len() == data.len() {
                exec::copy_f64(data, &mut b.data);
            } else {
                b.data.clone_from(data);
            }
        }
        Ok(())
    }

    /// Total bytes of element data across all buffers.
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.data.len() * 8).sum()
    }

    /// Overwrites this memory's contents from `template`, reusing
    /// existing allocations where lengths match (a derived
    /// `Clone::clone_from` would reallocate every buffer). The two
    /// memories must be images of the same program setup; layouts that
    /// differ fall back to a full clone.
    pub fn restore_from(&mut self, template: &DeviceMemory) {
        if self.buffers.len() != template.buffers.len() {
            self.buffers = template.buffers.clone();
            return;
        }
        for (dst, src) in self.buffers.iter_mut().zip(&template.buffers) {
            dst.base_addr = src.base_addr;
            dst.written = src.written;
            if dst.name != src.name {
                dst.name.clone_from(&src.name);
            }
            if dst.data.len() == src.data.len() {
                exec::copy_f64(&src.data, &mut dst.data);
            } else {
                dst.data.clone_from(&src.data);
            }
        }
    }

    /// [`DeviceMemory::restore_from`] restricted to buffers that may
    /// have diverged: a buffer is copied only when *either* side's
    /// written flag is set — `self` wrote it since its flags last
    /// mirrored `template`'s, or `template` wrote it since the sync
    /// point the caller tracks. Buffers with both flags clear are
    /// bit-equal by that contract and are skipped. Afterwards `self`'s
    /// flags mirror `template`'s exactly, like a full restore.
    ///
    /// Callers must guarantee the two memories share a sync lineage
    /// (see `RunScratch`'s fork path); layouts that differ fall back to
    /// a full restore.
    pub fn restore_written_from(&mut self, template: &DeviceMemory) {
        if self.buffers.len() != template.buffers.len() {
            self.restore_from(template);
            return;
        }
        for (dst, src) in self.buffers.iter_mut().zip(&template.buffers) {
            if dst.written || src.written {
                dst.base_addr = src.base_addr;
                if dst.name != src.name {
                    dst.name.clone_from(&src.name);
                }
                if dst.data.len() == src.data.len() {
                    exec::copy_f64(&src.data, &mut dst.data);
                } else {
                    dst.data.clone_from(&src.data);
                }
            }
            dst.written = src.written;
        }
    }

    /// Buffer length in elements.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn len_of(&self, buf: BufferId) -> Result<usize, AccelError> {
        Ok(self.buffer(buf)?.data.len())
    }

    /// The buffer's debug name.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`].
    pub fn name_of(&self, buf: BufferId) -> Result<&str, AccelError> {
        Ok(&self.buffer(buf)?.name)
    }

    /// One-lookup read window: the flat byte address of `start` plus the
    /// `len`-element slice beginning there. The bulk-load hot path's
    /// fused [`DeviceMemory::byte_addr`] + [`DeviceMemory::slice`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn window(
        &self,
        buf: BufferId,
        start: usize,
        len: usize,
    ) -> Result<(usize, &[f64]), AccelError> {
        let b = self.buffer(buf)?;
        match b.data.get(start..start + len) {
            Some(w) => Ok((b.base_addr + start * 8, w)),
            None => Err(AccelError::OutOfBounds {
                buffer: buf.0,
                index: start + len.saturating_sub(1),
                len: b.data.len(),
            }),
        }
    }

    /// Mutable counterpart of [`DeviceMemory::window`]; marks the buffer
    /// written.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn window_mut(
        &mut self,
        buf: BufferId,
        start: usize,
        len: usize,
    ) -> Result<(usize, &mut [f64]), AccelError> {
        let b = self.buffer_mut(buf)?;
        b.written = true;
        let blen = b.data.len();
        match b.data.get_mut(start..start + len) {
            Some(w) => Ok((b.base_addr + start * 8, w)),
            None => Err(AccelError::OutOfBounds {
                buffer: buf.0,
                index: start + len.saturating_sub(1),
                len: blen,
            }),
        }
    }

    /// The flat byte address of an element, used by the cache model.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::UnknownBuffer`] or [`AccelError::OutOfBounds`].
    pub fn byte_addr(&self, addr: ElemAddr) -> Result<usize, AccelError> {
        let b = self.buffer(addr.buffer)?;
        if addr.index >= b.data.len() {
            return Err(AccelError::OutOfBounds {
                buffer: addr.buffer.0,
                index: addr.index,
                len: b.data.len(),
            });
        }
        Ok(b.base_addr + addr.index * 8)
    }

    /// Maps a flat byte address back to the element containing it, if any.
    pub fn elem_at_byte(&self, byte: usize) -> Option<ElemAddr> {
        for (i, b) in self.buffers.iter().enumerate() {
            let end = b.base_addr + b.data.len() * 8;
            if byte >= b.base_addr && byte < end {
                return Some(ElemAddr {
                    buffer: BufferId(i),
                    index: (byte - b.base_addr) / 8,
                });
            }
        }
        None
    }

    /// Number of allocations.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    fn buffer(&self, buf: BufferId) -> Result<&Buffer, AccelError> {
        self.buffers
            .get(buf.0)
            .ok_or(AccelError::UnknownBuffer(buf.0))
    }

    fn buffer_mut(&mut self, buf: BufferId) -> Result<&mut Buffer, AccelError> {
        self.buffers
            .get_mut(buf.0)
            .ok_or(AccelError::UnknownBuffer(buf.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc("b", 4);
        assert_eq!(mem.read(b, 0).unwrap(), 0.0);
        mem.write(b, 2, 7.5).unwrap();
        assert_eq!(mem.read(b, 2).unwrap(), 7.5);
        assert_eq!(mem.len_of(b).unwrap(), 4);
        assert_eq!(mem.name_of(b).unwrap(), "b");
    }

    #[test]
    fn alloc_init_copies() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc_init("init", &[1.0, 2.0]);
        assert_eq!(mem.to_vec(b).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc("b", 2);
        assert!(matches!(
            mem.read(b, 2),
            Err(AccelError::OutOfBounds {
                index: 2,
                len: 2,
                ..
            })
        ));
        assert!(mem.write(b, 5, 0.0).is_err());
    }

    #[test]
    fn unknown_buffer_rejected() {
        let mem = DeviceMemory::new();
        assert_eq!(mem.read(BufferId(0), 0), Err(AccelError::UnknownBuffer(0)));
    }

    #[test]
    fn buffers_do_not_share_cache_lines() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 3); // 24 bytes
        let b = mem.alloc("b", 3);
        let end_a = mem
            .byte_addr(ElemAddr {
                buffer: a,
                index: 2,
            })
            .unwrap()
            + 8;
        let start_b = mem
            .byte_addr(ElemAddr {
                buffer: b,
                index: 0,
            })
            .unwrap();
        assert!(
            start_b >= 256,
            "second buffer must start on a fresh 256 B block"
        );
        assert!(start_b >= end_a);
        assert_eq!(start_b % 256, 0);
    }

    #[test]
    fn byte_addr_roundtrip() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 10);
        let b = mem.alloc("b", 10);
        for &(buf, idx) in &[(a, 0usize), (a, 9), (b, 0), (b, 5)] {
            let addr = ElemAddr {
                buffer: buf,
                index: idx,
            };
            let byte = mem.byte_addr(addr).unwrap();
            assert_eq!(mem.elem_at_byte(byte), Some(addr));
            // Any byte within the element maps back to it.
            assert_eq!(mem.elem_at_byte(byte + 7), Some(addr));
        }
    }

    #[test]
    fn elem_at_unmapped_byte_is_none() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1); // occupies bytes [0, 8)
        let _ = a;
        assert_eq!(mem.elem_at_byte(8), None);
    }

    #[test]
    fn restore_written_skips_clean_buffers_and_mirrors_flags() {
        let mut src = DeviceMemory::new();
        let a = src.alloc_init("a", &[1.0, 2.0]);
        let b = src.alloc_init("b", &[3.0, 4.0]);
        let mut dst = src.clone();
        // Sync point: flags clear on both sides, images equal.
        src.reset_write_tracking();
        dst.reset_write_tracking();

        // Source writes only `b`; a fork restore must pick that up while
        // leaving the untouched `a` allocation alone.
        src.write(b, 0, 30.0).unwrap();
        dst.write(a, 1, -1.0).unwrap(); // local divergence, also synced back
        dst.restore_written_from(&src);
        assert_eq!(dst.read(a, 1).unwrap(), 2.0, "dst-written buffer restored");
        assert_eq!(dst.read(b, 0).unwrap(), 30.0, "src-written buffer copied");
        // Flags mirror the source exactly, like a full restore.
        assert_eq!(dst.written_delta().len(), src.written_delta().len());

        // With both sides clean since the sync, nothing is copied: a
        // behind-the-back divergence survives, proving the skip.
        src.reset_write_tracking();
        dst.reset_write_tracking();
        dst.buffer_mut(a).unwrap().data[0] = 99.0;
        dst.reset_write_tracking();
        dst.restore_written_from(&src);
        assert_eq!(dst.read(a, 0).unwrap(), 99.0, "clean buffers are skipped");
    }

    #[test]
    fn take_vec_moves_without_copy_and_restore_rebuilds() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[1.0, 2.0]);
        let b = mem.alloc("b", 4);
        mem.write(b, 0, 9.0).unwrap();
        let template = mem.clone();

        let taken = mem.take_vec(b).unwrap();
        assert_eq!(taken, vec![9.0, 0.0, 0.0, 0.0]);
        assert_eq!(mem.len_of(b).unwrap(), 0, "buffer left empty");

        mem.restore_from(&template);
        assert_eq!(mem.to_vec(a).unwrap(), vec![1.0, 2.0]);
        assert_eq!(mem.to_vec(b).unwrap(), vec![9.0, 0.0, 0.0, 0.0]);
        assert_eq!(mem.total_bytes(), template.total_bytes());
    }

    #[test]
    fn restore_from_handles_layout_mismatch() {
        let mut mem = DeviceMemory::new();
        mem.alloc("x", 2);
        let mut template = DeviceMemory::new();
        let a = template.alloc_init("a", &[3.0]);
        template.alloc("b", 2);
        mem.restore_from(&template);
        assert_eq!(mem.buffer_count(), 2);
        assert_eq!(mem.to_vec(a).unwrap(), vec![3.0]);
    }

    #[test]
    fn flip_bits_xors_pattern() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc_init("b", &[1.0]);
        // Flip the sign bit.
        mem.flip_bits(b, 0, 1 << 63).unwrap();
        assert_eq!(mem.read(b, 0).unwrap(), -1.0);
        // Flipping again restores.
        mem.flip_bits(b, 0, 1 << 63).unwrap();
        assert_eq!(mem.read(b, 0).unwrap(), 1.0);
    }

    proptest! {
        #[test]
        fn flip_is_involutive(v in -1e300f64..1e300, bit in 0u32..64) {
            let mut mem = DeviceMemory::new();
            let b = mem.alloc_init("b", &[v]);
            let mask = 1u64 << bit;
            mem.flip_bits(b, 0, mask).unwrap();
            mem.flip_bits(b, 0, mask).unwrap();
            let back = mem.read(b, 0).unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn writes_are_isolated(
            len in 1usize..64, idx in 0usize..64, v in -1e9f64..1e9) {
            prop_assume!(idx < len);
            let mut mem = DeviceMemory::new();
            let b = mem.alloc("b", len);
            mem.write(b, idx, v).unwrap();
            for i in 0..len {
                let expected = if i == idx { v } else { 0.0 };
                prop_assert_eq!(mem.read(b, i).unwrap(), expected);
            }
        }
    }
}
