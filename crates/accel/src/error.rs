//! Error types for the accelerator simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulator APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// A buffer id does not exist in device memory.
    UnknownBuffer(usize),
    /// An access was outside a buffer's bounds.
    OutOfBounds {
        /// The buffer accessed.
        buffer: usize,
        /// The offending element index.
        index: usize,
        /// The buffer length in elements.
        len: usize,
    },
    /// A device configuration parameter was invalid.
    InvalidConfig(String),
    /// A strike specification referenced a tile outside the program.
    StrikeOutOfRange {
        /// Tile index named by the strike.
        tile: usize,
        /// Number of tiles in the program.
        tiles: usize,
    },
    /// A campaign worker panicked while executing an injection; the
    /// payload is the panic message. Surfaced as a typed error so a
    /// panicking kernel aborts the campaign cleanly instead of the
    /// process.
    WorkerPanic(String),
    /// A persisted artifact (checkpoint, log) could not be read or was
    /// inconsistent with the campaign being run.
    Corrupt(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::UnknownBuffer(id) => write!(f, "unknown device buffer id {id}"),
            AccelError::OutOfBounds { buffer, index, len } => write!(
                f,
                "access to element {index} of buffer {buffer} (length {len}) is out of bounds"
            ),
            AccelError::InvalidConfig(msg) => write!(f, "invalid device configuration: {msg}"),
            AccelError::StrikeOutOfRange { tile, tiles } => write!(
                f,
                "strike targets tile {tile} but the program has only {tiles} tiles"
            ),
            AccelError::WorkerPanic(msg) => write!(f, "campaign worker panicked: {msg}"),
            AccelError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AccelError::OutOfBounds {
            buffer: 2,
            index: 10,
            len: 8,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('8') && s.contains('2'));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AccelError>();
    }
}
