//! Execution profiles: the dynamic footprint of one kernel run.
//!
//! The fault sampler needs to know how much live state a program exposes
//! (threads, cache occupancy, arithmetic volume) to weight strike sites
//! the way real cross-sections would. A profile is collected from a
//! fault-free (golden) run and reused for every injection of the same
//! configuration.

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// Dynamic footprint of one program execution on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Number of tiles dispatched.
    pub tiles: usize,
    /// Threads per tile.
    pub threads_per_tile: usize,
    /// Threads instantiated in total (`tiles × threads_per_tile`).
    pub instantiated_threads: usize,
    /// Threads concurrently resident on the device.
    pub resident_threads: usize,
    /// Concurrently resident tiles (wave width).
    pub wave_size: usize,
    /// Total arithmetic operations (FMA-equivalent) executed.
    pub total_ops: u64,
    /// Transcendental operations executed.
    pub transcendental_ops: u64,
    /// Elements loaded through the cache hierarchy.
    pub loads: u64,
    /// Elements stored through the cache hierarchy.
    pub stores: u64,
    /// Cache statistics at the end of the run.
    pub cache: CacheStats,
    /// Average bytes resident in the shared L2, sampled per tile.
    pub l2_avg_resident_bytes: f64,
    /// Average bytes resident across all L1s (estimated from capacity and
    /// miss behaviour).
    pub l1_avg_resident_bytes: f64,
}

impl ExecutionProfile {
    /// Arithmetic operations per tile, averaged.
    pub fn ops_per_tile(&self) -> f64 {
        if self.tiles == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.tiles as f64
        }
    }

    /// Operational intensity proxy: arithmetic operations per element
    /// moved (Table I's compute-bound/memory-bound classification;
    /// the paper cites the roofline model's ratio of floating point
    /// operations to bytes brought from memory).
    pub fn operational_intensity(&self) -> f64 {
        let moved = (self.loads + self.stores) as f64;
        if moved == 0.0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / moved
        }
    }

    /// L2 hit rate in `[0, 1]` (0 when the L2 was never accessed).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.cache.l2_hits + self.cache.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.cache.l2_hits as f64 / total as f64
        }
    }

    /// Fraction of transcendental ops among all ops.
    pub fn transcendental_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.transcendental_ops as f64 / self.total_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionProfile {
        ExecutionProfile {
            tiles: 10,
            threads_per_tile: 64,
            instantiated_threads: 640,
            resident_threads: 640,
            wave_size: 10,
            total_ops: 1000,
            transcendental_ops: 100,
            loads: 400,
            stores: 100,
            cache: CacheStats {
                l1_hits: 300,
                l1_misses: 200,
                l2_hits: 150,
                l2_misses: 50,
                l2_resident_lines: 8,
            },
            l2_avg_resident_bytes: 512.0,
            l1_avg_resident_bytes: 256.0,
        }
    }

    #[test]
    fn derived_ratios() {
        let p = sample();
        assert!((p.ops_per_tile() - 100.0).abs() < 1e-12);
        assert!((p.operational_intensity() - 2.0).abs() < 1e-12);
        assert!((p.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((p.transcendental_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let mut p = sample();
        p.tiles = 0;
        p.total_ops = 0;
        p.loads = 0;
        p.stores = 0;
        p.cache.l2_hits = 0;
        p.cache.l2_misses = 0;
        assert_eq!(p.ops_per_tile(), 0.0);
        assert!(p.operational_intensity().is_infinite());
        assert_eq!(p.l2_hit_rate(), 0.0);
        assert_eq!(p.transcendental_fraction(), 0.0);
    }
}
