//! # radcrit-accel
//!
//! An architectural simulator of tiled data-parallel HPC accelerators,
//! built as the experimental substrate for reproducing *"Radiation-Induced
//! Error Criticality in Modern HPC Parallel Accelerators"* (Oliveira et
//! al., HPCA 2017) without access to a neutron beam.
//!
//! The simulator models the microarchitectural mechanisms that the paper
//! identifies as responsible for error criticality differences between the
//! NVIDIA Tesla K40 (Kepler GK110b) and the Intel Xeon Phi 3120A (Knights
//! Corner):
//!
//! * a functional, data-carrying **set-associative cache hierarchy**
//!   ([`cache`]) — corruption of a resident line is visible to every
//!   subsequent consumer until eviction, so large shared caches (Phi's
//!   28.5 MB coherent L2) spread single strikes across many output
//!   elements while small ones (K40's 1.5 MB L2) isolate them;
//! * **scheduler models** ([`scheduler`]) — a hardware block scheduler
//!   whose exposed state grows with the number of resident threads (K40)
//!   versus an operating-system scheduler living in unirradiated DRAM
//!   (Phi);
//! * **register-file and vector-lane fault sites** — the K40 register file
//!   is ECC-protected but its operand-collector queues are not; the Phi
//!   exposes 512-bit vector registers whose upset corrupts up to eight
//!   double lanes at once;
//! * a **tiled execution engine** ([`engine`]) that runs [`program`]s
//!   (kernels) tile by tile in dispatch order, resolving abstract strike
//!   specifications ([`strike`]) against live machine state.
//!
//! Device configurations for both accelerators, with the published
//! microarchitectural parameters, are in [`config`].

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod memory;
pub mod profile;
pub mod program;
pub mod scheduler;
pub mod snapshot;
pub mod strike;
pub mod trace;

pub use cache::{CacheGeometry, CacheHierarchy};
pub use config::{DeviceConfig, DeviceKind, ResidencyPolicy, SchedulerKind};
pub use engine::{Engine, RunOutcome, RunScratch, StrikeResolution};
pub use error::AccelError;
pub use memory::{BufferId, DeviceMemory};
pub use profile::ExecutionProfile;
pub use program::{TileCtx, TileId, TiledProgram};
pub use snapshot::{SnapshotPolicy, SnapshotSet, DEFAULT_SNAPSHOT_BYTES};
pub use strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
pub use trace::{ExecutionTrace, TileTrace};
