//! Functional, fault-injectable cache hierarchy.
//!
//! The hierarchy carries **corruption state**, not a duplicate of the
//! data: backing DRAM (which the beam cannot reach, §IV-D) stays clean,
//! and a strike records XOR masks against elements of a *resident* line.
//! Readers observe the masks only while the line stays resident at some
//! level; what happens on eviction follows real write-policy semantics:
//!
//! * **L1 is write-through** (as on Kepler): an L1 line is never dirty, so
//!   evicting a corrupted L1 line silently discards the corruption — the
//!   next miss refetches clean data from L2/DRAM.
//! * **L2 is write-back**: evicting a corrupted line that is *dirty*
//!   (the program stored to it since it was filled) writes the corrupted
//!   bits back to DRAM, making the corruption permanent; evicting a clean
//!   corrupted line discards it.
//!
//! This is the mechanism behind the paper's core observation (§V-E): the
//! Phi's 28.5 MB coherent L2 keeps struck lines resident for most of a
//! kernel, so "corrupted data, once in the caches, will be used by more
//! elements before eviction", while the K40's 1.5 MB L2 evicts quickly and
//! isolates the strike.

use std::collections::HashMap;

use radcrit_core::exec::{self, KernelExecutor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::DeviceConfig;
use crate::error::AccelError;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheGeometry {
    /// Creates a geometry, validating divisibility.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if any parameter is zero or
    /// the capacity is not an integral number of sets of `associativity`
    /// lines.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        associativity: usize,
    ) -> Result<Self, AccelError> {
        if size_bytes == 0 || line_bytes == 0 || associativity == 0 {
            return Err(AccelError::InvalidConfig(
                "cache geometry parameters must be non-zero".into(),
            ));
        }
        if !line_bytes.is_multiple_of(8) {
            return Err(AccelError::InvalidConfig(format!(
                "line size {line_bytes} must hold whole f64 elements"
            )));
        }
        let way_bytes = line_bytes * associativity;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(AccelError::InvalidConfig(format!(
                "cache size {size_bytes} is not a whole number of {associativity}-way sets \
                 of {line_bytes}-byte lines"
            )));
        }
        Ok(CacheGeometry {
            size_bytes,
            line_bytes,
            associativity,
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Total number of lines.
    pub fn total_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Elements (f64) per line.
    pub fn elems_per_line(&self) -> usize {
        self.line_bytes / 8
    }
}

/// A corrupted bit pattern pending on one element of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flip {
    /// Byte offset of the element within the line (multiple of 8).
    offset: usize,
    /// XOR mask over the element's 64 bits.
    mask: u64,
}

/// Heap bytes one resident way occupies in the approximate accounting
/// (`line` + `last_use` + padded `dirty`, the fields of the former
/// per-entry struct); also used for the per-set header so snapshot
/// charges stay comparable across layout changes.
const WAY_ACCT_BYTES: usize = 24;

/// Corrupted data leaving the hierarchy towards DRAM (write-back of a
/// dirty corrupted line) — the engine applies these masks permanently to
/// backing memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBack {
    /// Flat byte address of the corrupted element.
    pub byte_addr: usize,
    /// XOR mask to fold into the element.
    pub mask: u64,
}

/// Where a strike landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrikeInfo {
    /// Flat byte address of the corrupted element.
    pub byte_addr: usize,
    /// The XOR mask injected.
    pub mask: u64,
}

/// Strength-reduced `x % d` for a divisor fixed at construction
/// (Lemire's fastmod, exact for 32-bit operands): two multiplies
/// instead of a hardware divide, which would otherwise dominate the
/// per-access cost of set indexing. Operands outside 32 bits (absurd
/// line numbers or set counts) fall back to the plain remainder.
#[derive(Debug, Clone, Copy)]
struct FastMod {
    d: u64,
    m: u64,
}

impl FastMod {
    fn new(d: u64) -> Self {
        debug_assert!(d > 0);
        let m = if d > 1 && d >> 32 == 0 {
            u64::MAX / d + 1
        } else {
            0 // d == 1 (`x % 1` is free) or oversized: plain remainder
        };
        FastMod { d, m }
    }

    #[inline(always)]
    fn rem(&self, x: u64) -> u64 {
        if x >> 32 != 0 || self.m == 0 {
            return x % self.d;
        }
        let low = self.m.wrapping_mul(x);
        ((low as u128 * self.d as u128) >> 64) as u64
    }
}

/// Tag value of an unoccupied way slot. Real line numbers are byte
/// addresses divided by the line size, far below `u64::MAX`, so the
/// sentinel can never match a probed line — which lets the hit scan
/// cover the full associativity width branchlessly instead of only the
/// occupied prefix.
const VACANT: u64 = u64::MAX;

/// One 64-byte-aligned chunk of the per-set tag/use slab. The alignment
/// guarantees a 4-way set's entire hot state (4 tags + 4 use ticks =
/// 64 bytes) occupies exactly one host cache line.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
struct SetBlock([u64; 8]);

/// One set-associative, LRU cache with corruption tracking.
///
/// The tag and LRU state lives in one flat slab of 64-byte-aligned
/// blocks, laid out per set as `[assoc tags][assoc use-ticks]` (padded
/// to a whole number of blocks): a touch — tag scan plus LRU update —
/// stays within one host cache line for a 4-way set instead of hitting
/// separate tag and use slabs. Vacant slots hold the [`VACANT`] tag and
/// use-tick 0; the hit scan compares a contiguous, fixed-width run of
/// `u64` tags — which vectorizes — and snapshot restores are flat
/// `clone_from`s. Slot order within a set mirrors `Vec` semantics
/// exactly (push appends, eviction swap-removes), so LRU victims,
/// strike sampling order and flush order are unchanged.
#[derive(Debug, Clone)]
struct SetAssocCache {
    geom: CacheGeometry,
    assoc: usize,
    /// `u64`s per set in `slab`: `2 * assoc` rounded up to a block.
    stride: usize,
    slab: Vec<SetBlock>,
    dirty: Vec<u8>,
    lens: Vec<u32>,
    set_mod: FastMod,
    flips: HashMap<u64, Vec<Flip>>,
    tick: u64,
    hits: u64,
    misses: u64,
    resident: usize,
    track_dirty: bool,
}

/// Slab `u64`s per set for an associativity: tags + use ticks, padded
/// to whole 64-byte blocks.
#[inline(always)]
const fn set_stride(assoc: usize) -> usize {
    (2 * assoc).next_multiple_of(8)
}

/// Resets a tag/use slab to all-vacant: every tag [`VACANT`], every use
/// tick (and padding) 0 — the state the miss path's combined
/// vacancy/LRU scan expects of an empty set.
fn fill_vacant(slab: &mut [SetBlock], sets: usize, stride: usize, assoc: usize) {
    for b in slab.iter_mut() {
        b.0 = [0; 8];
    }
    // Safety: as in `SetAssocCache::slab_u64`.
    let u64s =
        unsafe { std::slice::from_raw_parts_mut(slab.as_mut_ptr().cast::<u64>(), slab.len() * 8) };
    for set in 0..sets {
        u64s[set * stride..set * stride + assoc].fill(VACANT);
    }
}

impl SetAssocCache {
    fn new(geom: CacheGeometry, track_dirty: bool) -> Self {
        let assoc = geom.associativity;
        let stride = set_stride(assoc);
        let mut slab = vec![SetBlock([0; 8]); geom.sets() * stride / 8];
        fill_vacant(&mut slab, geom.sets(), stride, assoc);
        SetAssocCache {
            geom,
            assoc,
            stride,
            slab,
            dirty: vec![0; geom.sets() * assoc],
            lens: vec![0; geom.sets()],
            set_mod: FastMod::new(geom.sets() as u64),
            flips: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            resident: 0,
            track_dirty,
        }
    }

    /// The slab viewed as flat `u64`s: set `s`'s tags at `[s * stride,
    /// s * stride + assoc)`, its use ticks at `assoc` past that.
    #[inline(always)]
    fn slab_u64(&self) -> &[u64] {
        // Safety: `SetBlock` is a transparent-enough array of 8 u64s
        // (align 64 ≥ align 8), so the reinterpretation is sound.
        unsafe { std::slice::from_raw_parts(self.slab.as_ptr().cast::<u64>(), self.slab.len() * 8) }
    }

    /// Mutable counterpart of [`SetAssocCache::slab_u64`].
    #[inline(always)]
    fn slab_u64_mut(&mut self) -> &mut [u64] {
        // Safety: as in `slab_u64`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.slab.as_mut_ptr().cast::<u64>(),
                self.slab.len() * 8,
            )
        }
    }

    #[inline(always)]
    fn set_of(&self, line: u64) -> usize {
        self.set_mod.rem(line) as usize
    }

    /// Approximate heap bytes of the current state, for snapshot byte
    /// accounting. Counts per-set headers, resident ways and pending
    /// flips (not slab capacity), mirroring the former per-set-`Vec`
    /// accounting so snapshot budgets behave identically.
    fn approx_heap_bytes(&self) -> usize {
        let flips: usize = self
            .flips
            .values()
            .map(|v| 48 + v.len() * std::mem::size_of::<Flip>())
            .sum();
        (self.lens.len() + self.resident) * WAY_ACCT_BYTES + flips
    }

    /// Makes `self` state-identical to `src`, reusing existing heap
    /// allocations (`Vec::clone_from` keeps buffers, `HashMap` keeps its
    /// table) — the hot path of snapshot resume, where a fresh `clone`
    /// per injection would re-allocate every slab.
    fn restore_from(&mut self, src: &SetAssocCache) {
        self.geom = src.geom;
        self.assoc = src.assoc;
        self.stride = src.stride;
        self.set_mod = src.set_mod;
        self.slab.clone_from(&src.slab);
        self.dirty.clone_from(&src.dirty);
        self.lens.clone_from(&src.lens);
        self.flips.clone_from(&src.flips);
        self.tick = src.tick;
        self.hits = src.hits;
        self.misses = src.misses;
        self.resident = src.resident;
        self.track_dirty = src.track_dirty;
    }

    /// Touches `line`; returns the evicted line's `(line, dirty, flips)`
    /// if an eviction happened.
    ///
    /// Generic over the [`KernelExecutor`] backend so the tag scan and
    /// LRU victim scan inline into the ISA-specific body of
    /// [`CacheHierarchy::access`] — dispatch happens once per bulk
    /// access, not once per line touch. Dispatches the associativities
    /// the paper devices actually use (4/8/16-way) to a const-width
    /// body: the tag scan and LRU victim pick then fully unroll, with
    /// no data-dependent trip counts left on the per-line hot path.
    #[inline(always)]
    fn touch<E: KernelExecutor>(
        &mut self,
        line: u64,
        write: bool,
    ) -> Option<(u64, bool, Vec<Flip>)> {
        match self.assoc {
            4 => self.touch_impl::<E, 4>(line, write),
            8 => self.touch_impl::<E, 8>(line, write),
            16 => self.touch_impl::<E, 16>(line, write),
            _ => self.touch_impl::<E, 0>(line, write),
        }
    }

    /// [`SetAssocCache::touch`] body, const-specialized per width.
    /// `A` is the set associativity, or 0 to read it at runtime (the
    /// fallback for unusual test geometries).
    #[inline(always)]
    fn touch_impl<E: KernelExecutor, const A: usize>(
        &mut self,
        line: u64,
        write: bool,
    ) -> Option<(u64, bool, Vec<Flip>)> {
        debug_assert_ne!(line, VACANT);
        debug_assert!(A == 0 || A == self.assoc);
        let assoc = if A == 0 { self.assoc } else { A };
        let stride = if A == 0 { self.stride } else { set_stride(A) };
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        // Tags at `tbase`, use ticks right behind them — one host
        // cache line covers both for a 4-way set.
        let tbase = set * stride;
        let ubase = tbase + assoc;
        debug_assert!(ubase + assoc <= self.slab.len() * 8);

        // Full-width tag scan on the SIMD execution core: vacant slots
        // hold `VACANT` and never match, so the scan covers all `assoc`
        // slots with no data-dependent trip count. Tags are unique
        // within a set, so at most one matches.
        //
        // Safety: `set_of` returns a value below `sets()` and the slab
        // holds `sets() * stride` u64s with `2 * assoc <= stride`, so
        // `[tbase, ubase + assoc)` is in bounds; `set * assoc + assoc`
        // is likewise in bounds for `dirty`.
        let tags = unsafe { self.slab_u64().get_unchecked(tbase..tbase + assoc) };
        if let Some(found) = E::find_u64(tags, line) {
            unsafe {
                *self.slab_u64_mut().get_unchecked_mut(ubase + found) = tick;
                if write && self.track_dirty {
                    *self.dirty.get_unchecked_mut(set * assoc + found) = 1;
                }
            }
            self.hits += 1;
            return None;
        }

        self.miss_fill::<E, A>(line, set, tick, write)
    }

    /// The fill half of [`SetAssocCache::touch`]: fill on a miss,
    /// evicting the LRU way of a full set. Inlined into the access
    /// loop alongside the hit scan: on streaming workloads (DGEMM row
    /// loads have no intra-tile line reuse) the private L1s miss on
    /// ~97% of touches, so the fill path IS the hot path and an
    /// out-of-line call here costs a full spill per access. `A` as in
    /// [`SetAssocCache::touch_impl`].
    #[inline(always)]
    fn miss_fill<E: KernelExecutor, const A: usize>(
        &mut self,
        line: u64,
        set: usize,
        tick: u64,
        write: bool,
    ) -> Option<(u64, bool, Vec<Flip>)> {
        let assoc = if A == 0 { self.assoc } else { A };
        let stride = if A == 0 { self.stride } else { set_stride(A) };
        let tbase = set * stride;
        let ubase = tbase + assoc;
        let dbase = set * assoc;
        self.misses += 1;
        // One full-width scan answers both questions: occupied ways
        // hold ticks >= 1 and vacant ways hold 0, so the minimum is a
        // vacant slot when the set has room (the FIRST vacant slot —
        // occupancy is a prefix and ties resolve to the lowest index)
        // and the unique LRU way when it is full. The occupancy slab
        // (`lens`) stays off the miss path entirely; it is only
        // written on fills, which stop once the cache warms up.
        //
        // Safety (all unchecked slab accesses below): in bounds as in
        // `touch_impl`, and `set < sets == lens.len()`.
        let victim =
            unsafe { E::min_index_u64(self.slab_u64().get_unchecked(ubase..ubase + assoc)) };
        debug_assert!(victim < assoc);
        let v_use = unsafe { *self.slab_u64().get_unchecked(ubase + victim) };
        let mut evicted = None;
        let slot;
        if v_use != 0 {
            // Full set: evict the LRU way (`last_use` ticks are unique,
            // so the minimum is the one LRU way regardless of order).
            let (v_line, v_dirty, last) = unsafe {
                let slab = self.slab_u64_mut();
                let v_line = *slab.get_unchecked(tbase + victim);
                // Mirror `Vec::swap_remove` + `push`: the last way
                // moves into the victim slot, the new line lands last.
                let last = assoc - 1;
                *slab.get_unchecked_mut(tbase + victim) = *slab.get_unchecked(tbase + last);
                *slab.get_unchecked_mut(ubase + victim) = *slab.get_unchecked(ubase + last);
                // Write-through levels never set dirty bits; skipping
                // the slab keeps the miss path off that cache line.
                let v_dirty = self.track_dirty && *self.dirty.get_unchecked(dbase + victim) != 0;
                if self.track_dirty {
                    *self.dirty.get_unchecked_mut(dbase + victim) =
                        *self.dirty.get_unchecked(dbase + last);
                }
                (v_line, v_dirty, last)
            };
            // Strikes are rare: skip the hash lookup entirely while no
            // corruption is pending anywhere in this cache.
            let flips = if self.flips.is_empty() {
                Vec::new()
            } else {
                self.flips.remove(&v_line).unwrap_or_default()
            };
            slot = last;
            evicted = Some((v_line, v_dirty, flips));
        } else {
            // Room left: the victim scan found the first vacant slot,
            // which is exactly where the append-order fill goes.
            self.resident += 1;
            unsafe {
                let len = self.lens.get_unchecked_mut(set);
                debug_assert_eq!(*len as usize, victim);
                *len += 1;
            }
            slot = victim;
        }
        unsafe {
            let slab = self.slab_u64_mut();
            *slab.get_unchecked_mut(tbase + slot) = line;
            *slab.get_unchecked_mut(ubase + slot) = tick;
            if self.track_dirty {
                *self.dirty.get_unchecked_mut(dbase + slot) = (write && self.track_dirty) as u8;
            }
        }
        evicted
    }

    fn is_resident(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.stride;
        // Vacant slots hold `VACANT` and can never match.
        exec::find_u64(&self.slab_u64()[base..base + self.assoc], line).is_some()
    }

    fn resident_count(&self) -> usize {
        self.resident
    }

    fn add_flip(&mut self, line: u64, offset: usize, mask: u64) {
        let entry = self.flips.entry(line).or_default();
        if let Some(f) = entry.iter_mut().find(|f| f.offset == offset) {
            f.mask ^= mask;
            if f.mask == 0 {
                entry.retain(|f| f.mask != 0);
            }
        } else {
            entry.push(Flip { offset, mask });
        }
        if self.flips.get(&line).is_some_and(Vec::is_empty) {
            self.flips.remove(&line);
        }
    }

    fn corruption_at(&self, line: u64, offset: usize) -> u64 {
        if !self.is_resident(line) {
            return 0;
        }
        self.flips
            .get(&line)
            .map(|v| {
                v.iter()
                    .filter(|f| f.offset == offset)
                    .fold(0u64, |acc, f| acc ^ f.mask)
            })
            .unwrap_or(0)
    }

    fn clear_flip_at(&mut self, line: u64, offset: usize) {
        if let Some(v) = self.flips.get_mut(&line) {
            v.retain(|f| f.offset != offset);
            if v.is_empty() {
                self.flips.remove(&line);
            }
        }
    }

    /// Picks a uniformly random resident line, or `None` when empty.
    fn sample_resident<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let total = self.resident_count();
        if total == 0 {
            return None;
        }
        let mut target = rng.gen_range(0..total);
        for (set, &len) in self.lens.iter().enumerate() {
            let len = len as usize;
            if target < len {
                return Some(self.slab_u64()[set * self.stride + target]);
            }
            target -= len;
        }
        unreachable!("resident count covered all sets")
    }

    /// Drains all resident lines, returning the corruption-carrying
    /// ones as `(line, dirty, flips)`. Uncorrupted lines drain silently:
    /// writing their bytes back would only re-write what backing memory
    /// already holds, so walking every resident line (tens of thousands
    /// in a warm L2) per run-final flush would be pure overhead. A flip
    /// only ever targets a resident line (eviction removes it with the
    /// line), so the flip table is exactly the corrupted-resident set.
    /// Lines are returned in ascending order for determinism.
    fn flush(&mut self) -> Vec<(u64, bool, Vec<Flip>)> {
        let mut out = Vec::new();
        if !self.flips.is_empty() {
            let mut entries: Vec<_> = std::mem::take(&mut self.flips).into_iter().collect();
            entries.sort_unstable_by_key(|&(line, _)| line);
            for (line, flips) in entries {
                let set = self.set_of(line);
                let base = set * self.stride;
                if let Some(w) = exec::find_u64(&self.slab_u64()[base..base + self.assoc], line) {
                    out.push((line, self.dirty[set * self.assoc + w] != 0, flips));
                }
            }
        }
        let (sets, stride, assoc) = (self.lens.len(), self.stride, self.assoc);
        fill_vacant(&mut self.slab, sets, stride, assoc);
        self.lens.fill(0);
        self.resident = 0;
        out
    }
}

/// Cache access statistics for the execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// L1 hits summed over units.
    pub l1_hits: u64,
    /// L1 misses summed over units.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Lines resident in L2 right now.
    pub l2_resident_lines: usize,
}

/// The per-device cache hierarchy: one private L1 per unit plus a shared
/// L2 (the Phi's per-core L2s are coherent over the ring and act as one
/// shared structure, §IV-A).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    line_bytes: usize,
    /// `log2(line_bytes)` when the line size is a power of two (both
    /// paper devices), letting [`CacheHierarchy::line_of`] shift instead
    /// of divide on the per-access hot path.
    line_shift: Option<u32>,
    /// Lines that have ever been struck this run. Strikes are rare (at
    /// most one per execution, §IV-D), so a linear scan of this tiny list
    /// is the fast path that lets bulk loads skip per-element corruption
    /// lookups entirely. Entries are conservative: they are not removed on
    /// eviction, only ever added.
    corrupted_watch: Vec<u64>,
    /// Whether corruption has ever *escaped* the flip tables this run:
    /// a load observed a non-zero mask, or a dirty corrupted line wrote
    /// back to DRAM mid-run. While this is `false` and no flips are
    /// pending, every executed tile has computed exactly the golden
    /// values — the basis for the engine's dead-strike early exit.
    pub(crate) corruption_touched: bool,
}

impl CacheHierarchy {
    /// Builds the hierarchy for a device configuration.
    ///
    /// L1 and L2 share the device's line size (the larger of the two
    /// configured line sizes is used for both levels to keep line
    /// addressing uniform; both paper devices use a single line size per
    /// level anyway).
    pub fn new(cfg: &DeviceConfig) -> Self {
        let line_bytes = cfg.l1().line_bytes.max(cfg.l2().line_bytes);
        let l1_geom = CacheGeometry::new(cfg.l1().size_bytes, line_bytes, cfg.l1().associativity)
            .unwrap_or_else(|_| cfg.l1());
        let l2_geom = CacheGeometry::new(cfg.l2().size_bytes, line_bytes, cfg.l2().associativity)
            .unwrap_or_else(|_| cfg.l2());
        CacheHierarchy {
            l1: (0..cfg.units())
                .map(|_| SetAssocCache::new(l1_geom, false))
                .collect(),
            l2: SetAssocCache::new(l2_geom, true),
            line_bytes,
            line_shift: line_bytes
                .is_power_of_two()
                .then(|| line_bytes.trailing_zeros()),
            corrupted_watch: Vec::new(),
            corruption_touched: false,
        }
    }

    /// Whether a load has ever observed a corrupted value or a corrupted
    /// dirty line has written back to DRAM this run. See the field doc.
    pub fn corruption_touched(&self) -> bool {
        self.corruption_touched
    }

    /// Fast check: could the element at `byte_addr` possibly carry pending
    /// corruption? `false` guarantees [`CacheHierarchy::corruption_for`]
    /// would return 0, letting bulk loads take a copy-only fast path.
    #[inline]
    pub fn elem_maybe_corrupted(&self, byte_addr: usize) -> bool {
        if self.corrupted_watch.is_empty() {
            return false;
        }
        self.corrupted_watch.contains(&self.line_of(byte_addr))
    }

    /// Fast check at line granularity; see
    /// [`CacheHierarchy::elem_maybe_corrupted`].
    #[inline]
    pub fn line_maybe_corrupted(&self, line: u64) -> bool {
        !self.corrupted_watch.is_empty() && self.corrupted_watch.contains(&line)
    }

    /// Element-index ranges of the access span `[byte_addr, byte_addr +
    /// len)` (8-byte elements, `byte_addr` element-aligned) that lie on
    /// ever-struck lines. Everything outside the returned ranges is
    /// guaranteed corruption-free, so bulk accesses only pay per-element
    /// corruption checks on the handful of elements sharing a line with
    /// a strike — the watch list holds at most one entry per strike.
    pub fn corrupted_elem_ranges(&self, byte_addr: usize, len: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.corrupted_ranges_into(byte_addr, len, &mut out);
        out
    }

    /// [`CacheHierarchy::corrupted_elem_ranges`] into a caller-owned
    /// vector (cleared first), so per-row scans on the bulk load/store
    /// paths reuse one allocation across rows.
    pub fn corrupted_ranges_into(
        &self,
        byte_addr: usize,
        len: usize,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        if self.corrupted_watch.is_empty() || len == 0 {
            return;
        }
        let end = byte_addr + len;
        for &line in &self.corrupted_watch {
            let line_start = line as usize * self.line_bytes;
            let lo = line_start.max(byte_addr);
            let hi = (line_start + self.line_bytes).min(end);
            if lo < hi {
                out.push(((lo - byte_addr) / 8, (hi - byte_addr).div_ceil(8)));
            }
        }
    }

    /// The uniform line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Approximate heap footprint of the hierarchy's current state, used
    /// to account a cloned hierarchy against a snapshot byte budget.
    pub(crate) fn approx_heap_bytes(&self) -> usize {
        self.l1
            .iter()
            .map(SetAssocCache::approx_heap_bytes)
            .sum::<usize>()
            + self.l2.approx_heap_bytes()
            + self.corrupted_watch.len() * 8
    }

    /// Makes `self` state-identical to `src`, reusing heap allocations
    /// where layouts agree (see [`SetAssocCache::restore_from`]).
    pub(crate) fn restore_from(&mut self, src: &CacheHierarchy) {
        if self.l1.len() == src.l1.len() {
            for (dst, s) in self.l1.iter_mut().zip(&src.l1) {
                dst.restore_from(s);
            }
        } else {
            self.l1.clone_from(&src.l1);
        }
        self.l2.restore_from(&src.l2);
        self.line_bytes = src.line_bytes;
        self.line_shift = src.line_shift;
        self.corrupted_watch.clone_from(&src.corrupted_watch);
        self.corruption_touched = src.corruption_touched;
    }

    #[inline(always)]
    fn line_of(&self, byte_addr: usize) -> u64 {
        match self.line_shift {
            Some(s) => (byte_addr >> s) as u64,
            None => (byte_addr / self.line_bytes) as u64,
        }
    }

    /// Touches every line overlapping `[byte_addr, byte_addr + len)` from
    /// `unit`, with `write` marking L2 lines dirty. Returns corrupted
    /// write-backs caused by evictions (apply them to backing memory).
    pub fn access(
        &mut self,
        unit: usize,
        byte_addr: usize,
        len: usize,
        write: bool,
    ) -> Vec<WriteBack> {
        // ISA dispatch happens here, once per bulk access: the
        // `#[target_feature]` wrapper lets the executor's intrinsics
        // inline straight into the touch loop, so per-line touches pay
        // no per-call dispatch.
        match exec::active() {
            #[cfg(target_arch = "x86_64")]
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            exec::Isa::Avx2 => unsafe { self.access_avx2(unit, byte_addr, len, write) },
            #[cfg(target_arch = "aarch64")]
            exec::Isa::Neon => self.access_body::<exec::Neon>(unit, byte_addr, len, write),
            _ => self.access_body::<exec::Scalar>(unit, byte_addr, len, write),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn access_avx2(
        &mut self,
        unit: usize,
        byte_addr: usize,
        len: usize,
        write: bool,
    ) -> Vec<WriteBack> {
        self.access_body::<exec::Avx2>(unit, byte_addr, len, write)
    }

    #[inline(always)]
    pub(crate) fn access_body<E: KernelExecutor>(
        &mut self,
        unit: usize,
        byte_addr: usize,
        len: usize,
        write: bool,
    ) -> Vec<WriteBack> {
        let mut out = Vec::new();
        self.access_into::<E>(unit, byte_addr, len, write, &mut out);
        out
    }

    /// [`CacheHierarchy::access_body`] with a caller-owned write-back
    /// vector, so bulk row loads reuse one allocation across rows.
    #[inline(always)]
    pub(crate) fn access_into<E: KernelExecutor>(
        &mut self,
        unit: usize,
        byte_addr: usize,
        len: usize,
        write: bool,
        out: &mut Vec<WriteBack>,
    ) {
        if len == 0 {
            return;
        }
        let first = self.line_of(byte_addr);
        let last = self.line_of(byte_addr + len - 1);
        for line in first..=last {
            // L1: write-through, never dirty; corrupted evictions vanish.
            let _ = self.l1[unit].touch::<E>(line, false);
            if let Some((ev_line, dirty, flips)) = self.l2.touch::<E>(line, write) {
                if dirty {
                    for f in flips {
                        out.push(WriteBack {
                            byte_addr: ev_line as usize * self.line_bytes + f.offset,
                            mask: f.mask,
                        });
                    }
                }
            }
        }
    }

    /// Notes a program write to the element at `byte_addr`: the stored
    /// value supersedes any pending corruption of that element at every
    /// level.
    pub fn note_element_write(&mut self, unit: usize, byte_addr: usize) {
        let line = self.line_of(byte_addr);
        let offset = byte_addr % self.line_bytes;
        self.l1[unit].clear_flip_at(line, offset);
        self.l2.clear_flip_at(line, offset);
    }

    /// The XOR mask a read from `unit` of the element at `byte_addr`
    /// currently observes (0 when uncorrupted). Combines corruption
    /// pending at the unit's L1 and at the shared L2.
    pub fn corruption_for(&self, unit: usize, byte_addr: usize) -> u64 {
        let line = self.line_of(byte_addr);
        let offset = byte_addr % self.line_bytes;
        self.l1[unit].corruption_at(line, offset) ^ self.l2.corruption_at(line, offset)
    }

    /// Whether any corruption is currently pending anywhere.
    ///
    /// The watch list is a superset of ever-struck lines and strikes
    /// are the only way flips enter the hierarchy, so an empty watch
    /// list answers in O(1) — the common case on golden runs and on
    /// every faulty run before its strike lands, where this gate runs
    /// once per bulk load/store.
    pub fn has_pending_corruption(&self) -> bool {
        if self.corrupted_watch.is_empty() {
            return false;
        }
        !self.l2.flips.is_empty() || self.l1.iter().any(|c| !c.flips.is_empty())
    }

    /// Strikes a random resident L2 line: flips `bits` in one element of
    /// the line. Returns `None` when the L2 is empty (strike hits an
    /// invalid line — architecturally masked).
    pub fn strike_l2<R: Rng + ?Sized>(&mut self, rng: &mut R, mask: u64) -> Option<StrikeInfo> {
        let line = self.l2.sample_resident(rng)?;
        let elems = self.line_bytes / 8;
        let offset = rng.gen_range(0..elems) * 8;
        self.l2.add_flip(line, offset, mask);
        if !self.corrupted_watch.contains(&line) {
            self.corrupted_watch.push(line);
        }
        Some(StrikeInfo {
            byte_addr: line as usize * self.line_bytes + offset,
            mask,
        })
    }

    /// Strikes a random resident line of `unit`'s L1.
    pub fn strike_l1<R: Rng + ?Sized>(
        &mut self,
        unit: usize,
        rng: &mut R,
        mask: u64,
    ) -> Option<StrikeInfo> {
        let cache = &mut self.l1[unit];
        let line = cache.sample_resident(rng)?;
        let elems = self.line_bytes / 8;
        let offset = rng.gen_range(0..elems) * 8;
        cache.add_flip(line, offset, mask);
        if !self.corrupted_watch.contains(&line) {
            self.corrupted_watch.push(line);
        }
        Some(StrikeInfo {
            byte_addr: line as usize * self.line_bytes + offset,
            mask,
        })
    }

    /// Flushes everything (end of kernel): dirty corrupted L2 lines write
    /// their corruption back to DRAM.
    pub fn flush(&mut self) -> Vec<WriteBack> {
        for l1 in &mut self.l1 {
            let _ = l1.flush(); // write-through: nothing to write back
        }
        let mut out = Vec::new();
        for (line, dirty, flips) in self.l2.flush() {
            if dirty {
                for f in flips {
                    out.push(WriteBack {
                        byte_addr: line as usize * self.line_bytes + f.offset,
                        mask: f.mask,
                    });
                }
            }
        }
        out
    }

    /// Aggregated access statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            l1_hits: self.l1.iter().map(|c| c.hits).sum(),
            l1_misses: self.l1.iter().map(|c| c.misses).sum(),
            l2_hits: self.l2.hits,
            l2_misses: self.l2.misses,
            l2_resident_lines: self.l2.resident_count(),
        }
    }

    /// Number of lines currently resident in the shared L2.
    pub fn l2_resident_lines(&self) -> usize {
        self.l2.resident_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng as SmallRng;

    fn tiny_hierarchy() -> CacheHierarchy {
        // 2 units, small caches to force evictions quickly.
        let cfg = DeviceConfig::builder("tiny")
            .units(2)
            .max_threads_per_unit(64)
            .l1(CacheGeometry::new(256, 64, 2).unwrap()) // 4 lines
            .l2(CacheGeometry::new(512, 64, 2).unwrap()) // 8 lines
            .build()
            .unwrap();
        CacheHierarchy::new(&cfg)
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(0, 64, 8).is_err());
        assert!(CacheGeometry::new(1024, 0, 8).is_err());
        assert!(CacheGeometry::new(1024, 64, 0).is_err());
        assert!(CacheGeometry::new(1000, 64, 8).is_err()); // not divisible
        assert!(CacheGeometry::new(1024, 60, 2).is_err()); // not f64 aligned
        let g = CacheGeometry::new(1024, 64, 2).unwrap();
        assert_eq!(g.sets(), 8);
        assert_eq!(g.total_lines(), 16);
        assert_eq!(g.elems_per_line(), 8);
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut h = tiny_hierarchy();
        h.access(0, 0, 8, false);
        h.access(0, 8, 8, false); // same line: hit
        let s = h.stats();
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn corruption_visible_while_resident() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(1);
        h.access(0, 0, 64, false);
        let info = h.strike_l2(&mut rng, 1 << 52).expect("line resident");
        assert!(h.has_pending_corruption());
        let mask = h.corruption_for(0, info.byte_addr);
        assert_eq!(mask, 1 << 52);
        // Another unit sees the same shared-L2 corruption.
        let mask2 = h.corruption_for(1, info.byte_addr);
        assert_eq!(mask2, 1 << 52);
    }

    #[test]
    fn strike_on_empty_cache_is_masked() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(h.strike_l2(&mut rng, 1).is_none());
        assert!(h.strike_l1(0, &mut rng, 1).is_none());
    }

    #[test]
    fn clean_corrupted_line_discards_on_eviction() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(3);
        h.access(0, 0, 8, false); // read-only: clean line
        let info = h.strike_l2(&mut rng, 0xFF).unwrap();
        // Evict by filling the set. L2 has 4 sets (512/64/2): lines
        // mapping to set 0 are line 0, 4, 8...
        let set_stride = 4 * 64;
        let mut wb = Vec::new();
        wb.extend(h.access(0, set_stride, 8, false));
        wb.extend(h.access(0, 2 * set_stride, 8, false));
        assert!(
            wb.is_empty(),
            "clean eviction must not write back corruption"
        );
        assert_eq!(h.corruption_for(0, info.byte_addr), 0, "corruption gone");
    }

    #[test]
    fn dirty_corrupted_line_writes_back_on_eviction() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(4);
        h.access(0, 0, 8, true); // write: dirty line
        let info = h.strike_l2(&mut rng, 0xAB).unwrap();
        let set_stride = 4 * 64;
        let mut wb = Vec::new();
        wb.extend(h.access(0, set_stride, 8, false));
        wb.extend(h.access(0, 2 * set_stride, 8, false));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].mask, 0xAB);
        assert_eq!(wb[0].byte_addr, info.byte_addr);
    }

    #[test]
    fn flush_writes_back_dirty_corruption() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(5);
        h.access(0, 128, 8, true);
        let info = h.strike_l2(&mut rng, 0x10).unwrap();
        let wb = h.flush();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].byte_addr, info.byte_addr);
        assert!(!h.has_pending_corruption());
    }

    #[test]
    fn program_write_supersedes_corruption() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(6);
        h.access(0, 0, 8, true);
        let info = h.strike_l2(&mut rng, 0xFFFF).unwrap();
        h.note_element_write(0, info.byte_addr);
        assert_eq!(h.corruption_for(0, info.byte_addr), 0);
        assert!(h.flush().is_empty());
    }

    #[test]
    fn l1_corruption_is_private_to_unit() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(7);
        h.access(0, 0, 8, false);
        let info = h.strike_l1(0, &mut rng, 1 << 3).unwrap();
        assert_eq!(h.corruption_for(0, info.byte_addr), 1 << 3);
        assert_eq!(h.corruption_for(1, info.byte_addr), 0, "unit 1 unaffected");
    }

    #[test]
    fn l1_eviction_discards_corruption_write_through() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(8);
        h.access(0, 0, 8, false);
        let info = h.strike_l1(0, &mut rng, 1 << 9).unwrap();
        // L1 has 2 sets (256/64/2): lines 0, 2, 4... map to set 0.
        let set_stride = 2 * 64;
        h.access(0, set_stride, 8, false);
        h.access(0, 2 * set_stride, 8, false);
        assert_eq!(h.corruption_for(0, info.byte_addr), 0);
    }

    #[test]
    fn double_strike_same_element_cancels() {
        let mut h = tiny_hierarchy();
        h.access(0, 0, 64, false);
        // Deterministically strike the same element twice via direct API.
        h.l2.add_flip(0, 0, 0xF0);
        h.l2.add_flip(0, 0, 0xF0);
        assert_eq!(h.corruption_for(0, 0), 0);
        assert!(!h.l2.flips.contains_key(&0), "zero masks must be pruned");
    }

    #[test]
    fn larger_l2_keeps_corruption_longer() {
        // The paper's Phi-vs-K40 spread asymmetry in miniature: stream
        // enough lines to overflow the small L2 but not the big one.
        let small_cfg = DeviceConfig::builder("small")
            .l1(CacheGeometry::new(256, 64, 2).unwrap())
            .l2(CacheGeometry::new(512, 64, 2).unwrap())
            .build()
            .unwrap();
        let big_cfg = DeviceConfig::builder("big")
            .l1(CacheGeometry::new(256, 64, 2).unwrap())
            .l2(CacheGeometry::new(8192, 64, 2).unwrap())
            .build()
            .unwrap();
        for (cfg, expect_surviving) in [(small_cfg, false), (big_cfg, true)] {
            let mut h = CacheHierarchy::new(&cfg);
            let mut rng = SmallRng::seed_from_u64(9);
            h.access(0, 0, 8, false);
            let info = h.strike_l2(&mut rng, 1).unwrap();
            // Stream 32 more distinct lines.
            for i in 1..=32 {
                h.access(0, i * 64, 8, false);
            }
            let survived = h.corruption_for(0, info.byte_addr) != 0;
            assert_eq!(
                survived,
                expect_surviving,
                "L2 of {} bytes",
                cfg.l2().size_bytes
            );
        }
    }

    #[test]
    fn fast_path_flags_struck_lines_only() {
        let mut h = tiny_hierarchy();
        let mut rng = SmallRng::seed_from_u64(10);
        h.access(0, 0, 64, false);
        h.access(0, 4096, 64, false);
        assert!(!h.elem_maybe_corrupted(0));
        let info = h.strike_l2(&mut rng, 1).unwrap();
        assert!(h.elem_maybe_corrupted(info.byte_addr));
        // The watch list is line-granular and conservative.
        let line_base = info.byte_addr / 64 * 64;
        assert!(h.elem_maybe_corrupted(line_base + 56));
    }

    #[test]
    fn resident_count_tracks_inserts_and_evictions() {
        let geom = CacheGeometry::new(128, 64, 2).unwrap(); // 1 set, 2 ways
        let mut c = SetAssocCache::new(geom, false);
        assert_eq!(c.resident_count(), 0);
        c.touch::<exec::Scalar>(0, false);
        c.touch::<exec::Scalar>(1, false);
        assert_eq!(c.resident_count(), 2);
        c.touch::<exec::Scalar>(2, false); // evicts one
        assert_eq!(c.resident_count(), 2);
        c.flush();
        assert_eq!(c.resident_count(), 0);
    }

    /// Not a correctness test: attribution harness for the simulated
    /// cache hot path (run with `--ignored --nocapture`). Kept in-tree
    /// because it needs access to the private [`SetAssocCache`].
    #[test]
    #[ignore]
    fn bench_touch_attribution() {
        use std::time::Instant;
        let cfg = DeviceConfig::kepler_k40();
        let h = CacheHierarchy::new(&cfg);
        let n_lines: u64 = 256 * 256 * 8 / 128; // one 512 KiB buffer
        for _ in 0..3 {
            let mut l1 = h.l1[0].clone();
            let t = Instant::now();
            for rep in 0..4u64 {
                for line in 0..n_lines {
                    let _ = l1.touch::<exec::Scalar>(line ^ (rep * 7), false);
                }
            }
            let l1_time = t.elapsed();
            let mut l2 = h.l2.clone();
            let t = Instant::now();
            for rep in 0..4u64 {
                for line in 0..n_lines {
                    let _ = l2.touch::<exec::Scalar>(line ^ (rep * 7), false);
                }
            }
            let l2_time = t.elapsed();
            let total = 4 * n_lines;
            eprintln!(
                "scalar: L1 {l1_time:?} ({:.1} ns/touch, {}h/{}m)  L2 {l2_time:?} ({:.1} ns/touch, {}h/{}m)",
                l1_time.as_nanos() as f64 / total as f64,
                l1.hits,
                l1.misses,
                l2_time.as_nanos() as f64 / total as f64,
                l2.hits,
                l2.misses,
            );
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let geom = CacheGeometry::new(128, 64, 2).unwrap(); // 1 set, 2 ways
        let mut c = SetAssocCache::new(geom, true);
        assert!(c.touch::<exec::Scalar>(0, false).is_none());
        assert!(c.touch::<exec::Scalar>(1, false).is_none());
        c.touch::<exec::Scalar>(0, false); // refresh line 0
        let evicted = c.touch::<exec::Scalar>(2, false).expect("eviction");
        assert_eq!(evicted.0, 1, "line 1 was least recently used");
        assert!(c.is_resident(0) && c.is_resident(2));
    }
}
