//! Device configurations.
//!
//! §IV-A of the paper describes the two boards under test. The presets
//! here carry the published microarchitectural parameters so that the
//! simulator's behaviour (cache sharing, scheduler strain, register
//! exposure) is driven by the real geometry of each device.

use serde::{Deserialize, Serialize};

use crate::cache::CacheGeometry;
use crate::error::AccelError;

/// Which real accelerator a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Tesla K40 (Kepler GK110b, 28 nm planar TSMC).
    KeplerK40,
    /// Intel Xeon Phi coprocessor 3120A (Knights Corner, 22 nm Tri-gate).
    XeonPhi3120A,
    /// A user-defined device.
    Custom,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::KeplerK40 => f.write_str("K40"),
            DeviceKind::XeonPhi3120A => f.write_str("Xeon Phi"),
            DeviceKind::Custom => f.write_str("custom"),
        }
    }
}

/// How parallel work is dispatched to execution units (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// A hardware block scheduler (NVIDIA): an irradiated on-chip resource
    /// whose exposed state grows with the number of managed threads, shown
    /// by the paper to contribute to device sensitivity (§V-A, point 1).
    Hardware,
    /// An operating-system software scheduler (Intel): scheduling state
    /// lives mostly in DRAM, which the beam does not reach, so only small
    /// per-core hardware task state is exposed.
    OperatingSystem,
}

/// Where the data of threads that are active but waiting lives
/// (§V-A, point 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResidencyPolicy {
    /// NVIDIA: waiting threads' data is kept in registers, so exposure
    /// grows with the number of instantiated threads. Register-file ECC
    /// mitigates but does not cover internal queues and flip-flops.
    RegisterResident,
    /// Intel: a core runs up to its hardware-thread count and subsequent
    /// work waits in DRAM, adding no exposed state.
    DramParked,
}

/// Full description of a simulated accelerator.
///
/// Construct one with [`DeviceConfig::kepler_k40`],
/// [`DeviceConfig::xeon_phi_3120a`] or [`DeviceConfig::builder`].
///
/// # Examples
///
/// ```
/// use radcrit_accel::config::DeviceConfig;
///
/// let k40 = DeviceConfig::kepler_k40();
/// assert_eq!(k40.units(), 15);                      // streaming multiprocessors
/// let phi = DeviceConfig::xeon_phi_3120a();
/// assert_eq!(phi.units(), 57);                      // in-order cores
/// assert!(phi.l2().size_bytes > k40.l2().size_bytes); // the paper's key asymmetry
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    kind: DeviceKind,
    name: String,
    units: usize,
    max_threads_per_unit: usize,
    hw_threads_per_unit: usize,
    register_file_bytes_per_unit: usize,
    l1: CacheGeometry,
    l2: CacheGeometry,
    scheduler: SchedulerKind,
    residency: ResidencyPolicy,
    ecc_register_file: bool,
    ecc_coverage: f64,
    vector_lanes_f64: usize,
    exposed_sfu: bool,
    per_bit_sensitivity: f64,
    shared_mem_per_unit: usize,
}

impl DeviceConfig {
    /// The NVIDIA Tesla K40 configuration (§IV-A):
    /// GK110b, 15 SMs, up to 2048 threads/SM, 30 Mbit total register file,
    /// 64 KB L1/shared per SM, 1536 KB L2, hardware scheduler,
    /// ECC-protected registers, 28 nm planar transistors.
    pub fn kepler_k40() -> Self {
        DeviceConfig {
            kind: DeviceKind::KeplerK40,
            name: "NVIDIA Tesla K40 (GK110b)".to_owned(),
            units: 15,
            max_threads_per_unit: 2048,
            hw_threads_per_unit: 2048,
            // 30 Mbit total / 15 SMs = 2 Mbit = 256 KiB per SM.
            register_file_bytes_per_unit: 256 * 1024,
            l1: CacheGeometry::new(64 * 1024, 128, 4).expect("valid K40 L1 geometry"),
            l2: CacheGeometry::new(1536 * 1024, 128, 16).expect("valid K40 L2 geometry"),
            scheduler: SchedulerKind::Hardware,
            residency: ResidencyPolicy::RegisterResident,
            ecc_register_file: true,
            // ECC corrects single-bit upsets in the RF proper; the residual
            // reaches unprotected operand-collector queues and flip-flops
            // (§V-A point 2: "data may still sit in internal queues or
            // flip-flops that are not protected").
            ecc_coverage: 0.9,
            // CUDA cores operate on 32-bit registers; a double occupies a
            // register pair, and an upset perturbs a single value.
            vector_lanes_f64: 1,
            // §V-E hypothesises the K40 transcendental (SFU) unit is more
            // prone to corruption; the Phi has no separate exposed SFU.
            exposed_sfu: true,
            // 28 nm planar bulk: the paper cites a 10x higher per-bit
            // neutron sensitivity than 3-D Tri-gate transistors (§IV-A,
            // citing Noh et al.).
            per_bit_sensitivity: 10.0,
            // 48 KB shared memory per SM: kernels with big per-block
            // local footprints (LavaMD, §V-B) are occupancy-limited by
            // it, not by the thread count.
            shared_mem_per_unit: 48 * 1024,
        }
    }

    /// The Intel Xeon Phi 3120A configuration (§IV-A):
    /// Knights Corner, 57 in-order cores with 4 hardware threads and
    /// 32 × 512-bit vector registers each, 64 KB L1 and 512 KB private
    /// coherent L2 per core (3648 KB / 29184 KB totals), OS scheduler,
    /// 22 nm Tri-gate transistors.
    pub fn xeon_phi_3120a() -> Self {
        DeviceConfig {
            kind: DeviceKind::XeonPhi3120A,
            name: "Intel Xeon Phi 3120A (Knights Corner)".to_owned(),
            units: 57,
            max_threads_per_unit: 4,
            hw_threads_per_unit: 4,
            // 32 vector registers x 64 bytes x 4 threads = 8 KiB, plus
            // scalar state; the VPU file dominates exposure.
            register_file_bytes_per_unit: 32 * 64 * 4,
            l1: CacheGeometry::new(64 * 1024, 64, 8).expect("valid Phi L1 geometry"),
            // L2 is 512 KB per core but fully coherent over the ring: a
            // line cached anywhere serves every core, so the simulator
            // models the aggregate 57 x 512 KB as one shared structure.
            l2: CacheGeometry::new(57 * 512 * 1024, 64, 8).expect("valid Phi L2 geometry"),
            scheduler: SchedulerKind::OperatingSystem,
            residency: ResidencyPolicy::DramParked,
            ecc_register_file: false,
            ecc_coverage: 0.0,
            // A 512-bit vector register holds eight f64 lanes.
            vector_lanes_f64: 8,
            exposed_sfu: false,
            // 22 nm Intel Tri-gate (FinFET-class): reference sensitivity.
            per_bit_sensitivity: 1.0,
            // No CUDA-style software-managed local memory: occupancy is
            // bounded by the 4 hardware threads alone.
            shared_mem_per_unit: 0,
        }
    }

    /// Starts building a custom device.
    pub fn builder(name: impl Into<String>) -> DeviceConfigBuilder {
        DeviceConfigBuilder::new(name)
    }

    /// A geometrically scaled-down variant of this device: caches and the
    /// register file shrink by `divisor`, everything else (unit counts,
    /// scheduler style, ECC, sensitivities — the architectural identity)
    /// stays.
    ///
    /// Campaigns on a software simulator cannot afford the paper's full
    /// input sizes (up to 8192² DGEMM); scaling the inputs *and* the
    /// storage hierarchy by the same factor preserves the ratios that
    /// drive the criticality results — which working sets spill which
    /// cache, and how exposure grows with threads.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when a scaled cache geometry
    /// is not realizable (capacity not divisible into sets).
    pub fn scaled(&self, divisor: usize) -> Result<DeviceConfig, AccelError> {
        if divisor == 0 {
            return Err(AccelError::InvalidConfig("zero scale divisor".into()));
        }
        let mut cfg = self.clone();
        cfg.name = format!("{} (1/{divisor} scale)", self.name);
        cfg.l1 = CacheGeometry::new(
            self.l1.size_bytes / divisor,
            self.l1.line_bytes,
            self.l1.associativity,
        )?;
        cfg.l2 = CacheGeometry::new(
            self.l2.size_bytes / divisor,
            self.l2.line_bytes,
            self.l2.associativity,
        )?;
        cfg.shared_mem_per_unit = self.shared_mem_per_unit / divisor;
        // The register file is per-thread state and scales with the
        // thread count of the (scaled) inputs by itself; shrinking it too
        // would double-count the scaling.
        Ok(cfg)
    }

    /// Which real accelerator this models.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of execution units (SMs for the K40, cores for the Phi).
    pub fn units(&self) -> usize {
        self.units
    }

    /// Maximum concurrently *resident* threads per unit (2048 per SM on
    /// the K40; 4 hardware threads per core on the Phi).
    pub fn max_threads_per_unit(&self) -> usize {
        self.max_threads_per_unit
    }

    /// Register file capacity per unit, in bytes.
    pub fn register_file_bytes_per_unit(&self) -> usize {
        self.register_file_bytes_per_unit
    }

    /// L1 geometry (per unit).
    pub fn l1(&self) -> CacheGeometry {
        self.l1
    }

    /// L2 geometry (shared across units).
    pub fn l2(&self) -> CacheGeometry {
        self.l2
    }

    /// The scheduler implementation style.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Where waiting threads' data resides.
    pub fn residency(&self) -> ResidencyPolicy {
        self.residency
    }

    /// Whether the register file is ECC protected.
    pub fn ecc_register_file(&self) -> bool {
        self.ecc_register_file
    }

    /// Fraction of register-file upsets corrected by ECC (0 when no ECC).
    pub fn ecc_coverage(&self) -> f64 {
        self.ecc_coverage
    }

    /// How many f64 lanes one architectural register holds (8 for the
    /// Phi's 512-bit VPU, 1 for the K40's 32-bit register pairs).
    pub fn vector_lanes_f64(&self) -> usize {
        self.vector_lanes_f64
    }

    /// Whether the device has a separate exposed transcendental unit
    /// (SFU) whose upsets feed corrupted arguments into `exp`/`sqrt`.
    pub fn exposed_sfu(&self) -> bool {
        self.exposed_sfu
    }

    /// Relative per-bit neutron sensitivity of the process technology
    /// (planar ≈ 10 × Tri-gate per the paper's §IV-A).
    pub fn per_bit_sensitivity(&self) -> f64 {
        self.per_bit_sensitivity
    }

    /// Software-managed local/shared memory per unit in bytes (0 = the
    /// device has none).
    pub fn shared_mem_per_unit(&self) -> usize {
        self.shared_mem_per_unit
    }

    /// How many tiles of `threads_per_tile` threads using
    /// `local_mem_per_tile` bytes of shared memory can be resident on the
    /// whole device at once — the engine's "wave" size.
    ///
    /// Occupancy is the minimum of the thread limit and the shared-memory
    /// limit; §V-B: LavaMD's ~14 KB per block "limits the number of
    /// active threads at any given time on the K40". A tile needing more
    /// threads than a unit supports still occupies one unit.
    pub fn concurrent_tiles(&self, threads_per_tile: usize, local_mem_per_tile: usize) -> usize {
        let by_threads = (self.max_threads_per_unit / threads_per_tile.max(1)).max(1);
        let per_unit = if self.shared_mem_per_unit > 0 && local_mem_per_tile > 0 {
            by_threads.min((self.shared_mem_per_unit / local_mem_per_tile).max(1))
        } else {
            by_threads
        };
        per_unit * self.units
    }

    /// Total resident threads when `tiles` tiles of `threads_per_tile`
    /// threads are launched — capped by occupancy. Drives the
    /// register-exposure model.
    pub fn resident_threads(
        &self,
        tiles: usize,
        threads_per_tile: usize,
        local_mem_per_tile: usize,
    ) -> usize {
        let wanted = tiles.saturating_mul(threads_per_tile);
        wanted
            .min(self.concurrent_tiles(threads_per_tile, local_mem_per_tile) * threads_per_tile)
            // A tile bigger than a unit's thread capacity runs in
            // batches: only the hardware contexts are ever live.
            .min(self.units * self.max_threads_per_unit)
    }
}

/// Builder for custom [`DeviceConfig`]s, for architecture-exploration
/// studies beyond the two paper devices.
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    cfg: DeviceConfig,
}

impl DeviceConfigBuilder {
    fn new(name: impl Into<String>) -> Self {
        let mut cfg = DeviceConfig::kepler_k40();
        cfg.kind = DeviceKind::Custom;
        cfg.name = name.into();
        DeviceConfigBuilder { cfg }
    }

    /// Sets the number of execution units.
    pub fn units(mut self, units: usize) -> Self {
        self.cfg.units = units;
        self
    }

    /// Sets the maximum resident threads per unit.
    pub fn max_threads_per_unit(mut self, n: usize) -> Self {
        self.cfg.max_threads_per_unit = n;
        self.cfg.hw_threads_per_unit = n;
        self
    }

    /// Sets the register-file size per unit in bytes.
    pub fn register_file_bytes_per_unit(mut self, bytes: usize) -> Self {
        self.cfg.register_file_bytes_per_unit = bytes;
        self
    }

    /// Sets the per-unit L1 geometry.
    pub fn l1(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l1 = geometry;
        self
    }

    /// Sets the shared L2 geometry.
    pub fn l2(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l2 = geometry;
        self
    }

    /// Sets the scheduler style.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Sets the waiting-thread residency policy.
    pub fn residency(mut self, policy: ResidencyPolicy) -> Self {
        self.cfg.residency = policy;
        self
    }

    /// Enables or disables register-file ECC with the given coverage.
    pub fn ecc(mut self, enabled: bool, coverage: f64) -> Self {
        self.cfg.ecc_register_file = enabled;
        self.cfg.ecc_coverage = if enabled { coverage } else { 0.0 };
        self
    }

    /// Sets the vector width in f64 lanes.
    pub fn vector_lanes_f64(mut self, lanes: usize) -> Self {
        self.cfg.vector_lanes_f64 = lanes;
        self
    }

    /// Sets whether an exposed transcendental unit exists.
    pub fn exposed_sfu(mut self, exposed: bool) -> Self {
        self.cfg.exposed_sfu = exposed;
        self
    }

    /// Sets the relative per-bit process sensitivity.
    pub fn per_bit_sensitivity(mut self, s: f64) -> Self {
        self.cfg.per_bit_sensitivity = s;
        self
    }

    /// Sets the shared/local memory per unit in bytes (0 = none).
    pub fn shared_mem_per_unit(mut self, bytes: usize) -> Self {
        self.cfg.shared_mem_per_unit = bytes;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when a parameter is
    /// non-physical (zero units/threads/lanes, ECC coverage outside
    /// `[0, 1]`, non-positive sensitivity).
    pub fn build(self) -> Result<DeviceConfig, AccelError> {
        let c = &self.cfg;
        if c.units == 0 {
            return Err(AccelError::InvalidConfig("zero execution units".into()));
        }
        if c.max_threads_per_unit == 0 {
            return Err(AccelError::InvalidConfig("zero threads per unit".into()));
        }
        if c.vector_lanes_f64 == 0 {
            return Err(AccelError::InvalidConfig("zero vector lanes".into()));
        }
        if !(0.0..=1.0).contains(&c.ecc_coverage) {
            return Err(AccelError::InvalidConfig(format!(
                "ECC coverage {} outside [0, 1]",
                c.ecc_coverage
            )));
        }
        if c.per_bit_sensitivity <= 0.0 || c.per_bit_sensitivity.is_nan() {
            return Err(AccelError::InvalidConfig(format!(
                "per-bit sensitivity {} must be positive",
                c.per_bit_sensitivity
            )));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_matches_published_parameters() {
        let k40 = DeviceConfig::kepler_k40();
        assert_eq!(k40.kind(), DeviceKind::KeplerK40);
        assert_eq!(k40.units(), 15);
        assert_eq!(k40.max_threads_per_unit(), 2048);
        assert_eq!(k40.l1().size_bytes, 64 * 1024);
        assert_eq!(k40.l2().size_bytes, 1536 * 1024);
        assert_eq!(k40.scheduler(), SchedulerKind::Hardware);
        assert_eq!(k40.residency(), ResidencyPolicy::RegisterResident);
        assert!(k40.ecc_register_file());
        assert!(k40.exposed_sfu());
        // 30 Mbit total register file = 15 x 256 KiB.
        assert_eq!(
            k40.register_file_bytes_per_unit() * 15 * 8,
            30 * 1024 * 1024
        );
    }

    #[test]
    fn phi_matches_published_parameters() {
        let phi = DeviceConfig::xeon_phi_3120a();
        assert_eq!(phi.kind(), DeviceKind::XeonPhi3120A);
        assert_eq!(phi.units(), 57);
        assert_eq!(phi.max_threads_per_unit(), 4);
        assert_eq!(phi.l1().size_bytes, 64 * 1024);
        // 29184 KB total coherent L2.
        assert_eq!(phi.l2().size_bytes, 29184 * 1024);
        assert_eq!(phi.scheduler(), SchedulerKind::OperatingSystem);
        assert_eq!(phi.residency(), ResidencyPolicy::DramParked);
        assert_eq!(phi.vector_lanes_f64(), 8);
        assert!(!phi.exposed_sfu());
    }

    #[test]
    fn paper_asymmetries_hold() {
        let k40 = DeviceConfig::kepler_k40();
        let phi = DeviceConfig::xeon_phi_3120a();
        // "Xeon Phi has larger caches than K40" (§V-E).
        assert!(phi.l2().size_bytes > k40.l2().size_bytes);
        // Planar 28 nm is ~10x more per-bit sensitive than Tri-gate.
        assert!(k40.per_bit_sensitivity() > phi.per_bit_sensitivity());
    }

    #[test]
    fn concurrent_tiles_scales_with_threads() {
        let k40 = DeviceConfig::kepler_k40();
        // 256-thread tiles: 8 per SM x 15 SMs.
        assert_eq!(k40.concurrent_tiles(256, 0), 8 * 15);
        // Oversized tiles still occupy one unit each.
        assert_eq!(k40.concurrent_tiles(100_000, 0), 15);
        let phi = DeviceConfig::xeon_phi_3120a();
        assert_eq!(phi.concurrent_tiles(4, 0), 57);
        assert_eq!(phi.concurrent_tiles(1, 0), 4 * 57);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let k40 = DeviceConfig::kepler_k40();
        // 32-thread blocks: thread limit allows 64 per SM...
        assert_eq!(k40.concurrent_tiles(32, 0), 64 * 15);
        // ...but 14 KB of local memory allows only 3 (the paper's LavaMD
        // situation, SS V-B).
        assert_eq!(k40.concurrent_tiles(32, 14 * 1024), 3 * 15);
        // The Phi has no software-managed local memory: no effect.
        let phi = DeviceConfig::xeon_phi_3120a();
        assert_eq!(phi.concurrent_tiles(4, 14 * 1024), 57);
    }

    #[test]
    fn resident_threads_is_capped() {
        let phi = DeviceConfig::xeon_phi_3120a();
        assert_eq!(phi.resident_threads(1000, 4, 0), 57 * 4);
        assert_eq!(phi.resident_threads(10, 4, 0), 40);
        let k40 = DeviceConfig::kepler_k40();
        assert_eq!(
            k40.resident_threads(10_000, 32, 14 * 1024),
            3 * 15 * 32,
            "local memory bounds residency"
        );
    }

    #[test]
    fn builder_validates() {
        assert!(DeviceConfig::builder("bad").units(0).build().is_err());
        assert!(DeviceConfig::builder("bad")
            .max_threads_per_unit(0)
            .build()
            .is_err());
        assert!(DeviceConfig::builder("bad")
            .vector_lanes_f64(0)
            .build()
            .is_err());
        assert!(DeviceConfig::builder("bad").ecc(true, 1.5).build().is_err());
        assert!(DeviceConfig::builder("bad")
            .per_bit_sensitivity(0.0)
            .build()
            .is_err());
        let ok = DeviceConfig::builder("mini-gpu")
            .units(2)
            .max_threads_per_unit(64)
            .build()
            .unwrap();
        assert_eq!(ok.kind(), DeviceKind::Custom);
        assert_eq!(ok.name(), "mini-gpu");
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::KeplerK40.to_string(), "K40");
        assert_eq!(DeviceKind::XeonPhi3120A.to_string(), "Xeon Phi");
    }

    #[test]
    fn scaled_devices_keep_identity_and_shrink_storage() {
        for base in [DeviceConfig::kepler_k40(), DeviceConfig::xeon_phi_3120a()] {
            let scaled = base.scaled(8).unwrap();
            assert_eq!(scaled.kind(), base.kind());
            assert_eq!(scaled.units(), base.units());
            assert_eq!(scaled.scheduler(), base.scheduler());
            assert_eq!(scaled.l2().size_bytes, base.l2().size_bytes / 8);
            assert_eq!(scaled.l1().size_bytes, base.l1().size_bytes / 8);
            assert_eq!(scaled.l2().line_bytes, base.l2().line_bytes);
            assert!(scaled.register_file_bytes_per_unit() <= base.register_file_bytes_per_unit());
        }
        // The key asymmetry survives scaling.
        let k40 = DeviceConfig::kepler_k40().scaled(8).unwrap();
        let phi = DeviceConfig::xeon_phi_3120a().scaled(8).unwrap();
        assert!(phi.l2().size_bytes > k40.l2().size_bytes);
    }

    #[test]
    fn zero_divisor_rejected() {
        assert!(DeviceConfig::kepler_k40().scaled(0).is_err());
    }
}
