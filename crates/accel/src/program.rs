//! The program model: tiled kernels and their machine context.
//!
//! A [`TiledProgram`] is a kernel decomposed into *tiles* — units of
//! dispatch corresponding to CUDA thread blocks on the K40 and core tasks
//! on the Xeon Phi. Tiles within one step must be independent; programs
//! with iterative structure (stencils, time-stepped solvers) encode
//! `step × tile` into the tile index and double-buffer their state.
//!
//! All data movement goes through [`TileCtx`] so the cache hierarchy sees
//! every access, and all floating-point arithmetic goes through the
//! `TileCtx` op wrappers ([`TileCtx::fma`], [`TileCtx::exp`], …) so that
//! in-flight logic upsets can corrupt individual operations. The wrappers
//! compile to plain arithmetic plus one predictable branch when no fault
//! is armed.

use radcrit_core::exec;
use radcrit_core::shape::OutputShape;
use radcrit_obs::profile::{phase_if, tile_sample, PhaseId};

use crate::error::AccelError;
use crate::memory::{BufferId, DeviceMemory};

/// Index of a tile within a program's dispatch space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId(pub usize);

impl TileId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A kernel that executes tile by tile on the simulated device.
pub trait TiledProgram {
    /// Kernel name for logs and reports.
    fn name(&self) -> &str;

    /// Total number of tiles (across all steps for iterative kernels).
    fn tile_count(&self) -> usize;

    /// Tiles of one kernel *launch* (one time step for iterative
    /// kernels). Thread-count-driven exposure (scheduler queue, register
    /// residency) sees one launch at a time, not the whole run; Table II
    /// counts threads per launch. Defaults to [`TiledProgram::tile_count`]
    /// for single-launch kernels.
    fn tiles_per_launch(&self) -> usize {
        self.tile_count()
    }

    /// Threads one tile occupies on the device (drives wave width,
    /// scheduler strain and register exposure).
    fn threads_per_tile(&self) -> usize;

    /// Software-managed local/shared memory one tile occupies, in bytes.
    /// Big footprints limit occupancy on devices with shared memory
    /// (§V-B: LavaMD's ~14 KB per block). Defaults to 0.
    fn local_mem_per_tile(&self) -> usize {
        0
    }

    /// Allocates and initializes device buffers. Called once per run on a
    /// fresh [`DeviceMemory`].
    ///
    /// # Errors
    ///
    /// Propagates allocation/initialization failures.
    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError>;

    /// Executes one tile, with all memory traffic and arithmetic routed
    /// through `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds accesses (which indicate a program bug,
    /// not a simulated fault).
    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError>;

    /// The buffer holding the kernel's output after the last tile.
    fn output(&self) -> BufferId;

    /// The logical geometry of the output buffer.
    fn output_shape(&self) -> OutputShape;

    /// Whether the engine may resume this program mid-run from a
    /// golden-prefix snapshot and reuse its post-setup memory image
    /// across runs. Requires [`TiledProgram::setup`] and
    /// [`TiledProgram::execute_tile`] to be pure over `self`: all
    /// run-varying state must live in device buffers, so replaying a
    /// suffix of tiles against restored machine state reproduces a full
    /// run bit for bit. Programs with observable per-execution state
    /// (e.g. an execution counter) must return `false`; the engine then
    /// always runs them from tile 0 with a fresh setup.
    fn resumable(&self) -> bool {
        true
    }
}

/// An in-flight fault armed on one tile by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct TileFault {
    /// First corrupted arithmetic op (u64::MAX ⇒ none).
    pub logic_at: u64,
    /// Number of consecutive ops corrupted from `logic_at`.
    pub logic_lanes: u64,
    /// XOR mask for corrupted op results.
    pub logic_mask: u64,
    /// Corrupted transcendental op (u64::MAX ⇒ none); the scale applies
    /// to the *argument*.
    pub sfu_at: u64,
    /// Multiplier for the transcendental argument (corrupted range
    /// reduction).
    pub sfu_scale: f64,
    /// First corrupted store (u64::MAX ⇒ none).
    pub store_at: u64,
    /// Number of consecutive stale stores.
    pub store_len: u64,
    /// Garble: corrupt every op with a pseudo-random mask.
    pub garble: bool,
}

impl TileFault {
    pub(crate) fn none() -> Self {
        TileFault {
            logic_at: u64::MAX,
            logic_lanes: 0,
            logic_mask: 0,
            sfu_at: u64::MAX,
            sfu_scale: 1.0,
            store_at: u64::MAX,
            store_len: 0,
            garble: false,
        }
    }

    pub(crate) fn is_armed(&self) -> bool {
        self.garble || self.logic_at != u64::MAX || self.sfu_at != u64::MAX
    }
}

/// Cumulative machine counters across tiles (engine-owned).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MachineCounters {
    pub ops: u64,
    pub trans_ops: u64,
    pub loads: u64,
    pub stores: u64,
}

/// Records element spans written to one watched buffer — program stores
/// plus corrupted write-backs — so differential runs know the candidate
/// dirty region of the output without scanning it.
#[derive(Debug)]
pub(crate) struct StoreLog {
    watched: BufferId,
    pub(crate) spans: Vec<(usize, usize)>,
}

impl StoreLog {
    pub(crate) fn new(watched: BufferId) -> Self {
        StoreLog {
            watched,
            spans: Vec::new(),
        }
    }

    pub(crate) fn record(&mut self, buf: BufferId, start: usize, len: usize) {
        if buf == self.watched && len > 0 {
            self.spans.push((start, len));
        }
    }
}

/// The machine context one tile executes against: routed memory access,
/// instrumented arithmetic, and the fault state armed for this tile.
#[derive(Debug)]
pub struct TileCtx<'a> {
    pub(crate) mem: &'a mut DeviceMemory,
    pub(crate) caches: &'a mut crate::cache::CacheHierarchy,
    pub(crate) unit: usize,
    pub(crate) fault: TileFault,
    pub(crate) fault_armed: bool,
    pub(crate) store_log: Option<&'a mut StoreLog>,
    // Per-tile counters (reset each tile).
    pub(crate) ops: u64,
    pub(crate) trans_ops: u64,
    pub(crate) loads: u64,
    pub(crate) stores: u64,
    pub(crate) store_ops: u64,
    pub(crate) last_store: f64,
    pub(crate) last_op: f64,
    pub(crate) garble_anchor: Option<f64>,
    pub(crate) garble_state: u64,
    // Whether this tile's per-element memory phases are profiled:
    // decided once per tile (see `TILE_SAMPLE_STRIDE`) so the per-row
    // load/store scopes cost one register test on unprofiled tiles.
    pub(crate) prof: bool,
}

impl<'a> TileCtx<'a> {
    pub(crate) fn new(
        mem: &'a mut DeviceMemory,
        caches: &'a mut crate::cache::CacheHierarchy,
        unit: usize,
        fault: TileFault,
    ) -> Self {
        let fault_armed = fault.is_armed();
        TileCtx {
            mem,
            caches,
            unit,
            fault,
            fault_armed,
            store_log: None,
            ops: 0,
            trans_ops: 0,
            loads: 0,
            stores: 0,
            store_ops: 0,
            last_store: 0.0,
            last_op: 0.0,
            garble_anchor: None,
            garble_state: 0x9E37_79B9_7F4A_7C15,
            prof: tile_sample(),
        }
    }

    /// Attaches a store log; subsequent stores and write-backs to the
    /// watched buffer are recorded as dirty spans.
    pub(crate) fn with_store_log(mut self, log: &'a mut StoreLog) -> Self {
        self.store_log = Some(log);
        self
    }

    /// The execution unit (SM / core) running this tile.
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// Records one arithmetic operation and returns its (possibly
    /// corrupted) result. The fast path — no fault armed on this tile —
    /// is a counter increment and a predictable branch.
    #[inline(always)]
    pub fn op(&mut self, value: f64) -> f64 {
        let idx = self.ops;
        self.ops += 1;
        if self.fault_armed {
            self.op_faulty(idx, value)
        } else {
            value
        }
    }

    #[cold]
    fn op_faulty(&mut self, idx: u64, value: f64) -> f64 {
        if self.fault.garble {
            // Garbled dispatch/task state makes the unit compute with
            // wrong operands — data fetched from wrong addresses or
            // phases. The result is a *plausible-magnitude* wrong value
            // (an in-flight result from when the state was corrupted),
            // not a random bit pattern: replay the value latched at
            // corruption time, perturbed per op so outputs are not all
            // identical.
            let mut x = self.garble_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.garble_state = x;
            if self.garble_anchor.is_none() {
                self.garble_anchor = Some(value);
            }
            let anchor = self.garble_anchor.expect("just set");
            // A small per-op wobble (±25 %) around the stale anchor.
            let wobble = 0.75 + (x >> 40) as f64 / (1u64 << 24) as f64 * 0.5;
            // Occasionally let the correct value through (some lanes
            // still hit the right data).
            return if x & 0xF == 0 { value } else { anchor * wobble };
        }
        self.last_op = value;
        if idx >= self.fault.logic_at && idx < self.fault.logic_at + self.fault.logic_lanes {
            return f64::from_bits(value.to_bits() ^ self.fault.logic_mask);
        }
        value
    }

    /// Fused multiply-add routed through the op counter: `a * b + acc`
    /// with a *single* rounding, like the hardware FFMA/VFMADD units of
    /// both paper devices (separate multiply-then-add rounds twice and
    /// matches neither). Host reference implementations must mirror the
    /// fusion with `f64::mul_add` to stay bitwise identical.
    #[inline(always)]
    pub fn fma(&mut self, a: f64, b: f64, acc: f64) -> f64 {
        // `mul_add` is correctly rounded on every lowering (hardware
        // FMA via libm's runtime dispatch, or the soft-float fallback),
        // so a single op needs no executor dispatch of its own; bulk
        // rows go through `exec::fma_row`.
        self.op(a.mul_add(b, acc))
    }

    /// Bulk fused multiply-add over a row: `acc[i] = fma(a, row[i],
    /// acc[i])` for each lane, one counted op per element — semantically
    /// identical to calling [`TileCtx::fma`] element by element (same op
    /// indices, same single-rounding fusion). The unarmed fast path
    /// counts the ops in one bump and leaves the row as a plain
    /// `mul_add` loop: inlined into a multiversioned tile body (see the
    /// kernels' `execute_tile` AVX2 wrappers) it vectorizes to fused
    /// hardware FMAs, while the portable fallback rounds identically.
    ///
    /// [`fma`]: TileCtx::fma
    #[inline(always)]
    pub fn fma_row(&mut self, a: f64, row: &[f64], acc: &mut [f64]) {
        if self.fault_armed {
            for (slot, &b) in acc.iter_mut().zip(row) {
                *slot = self.fma(a, b, *slot);
            }
            return;
        }
        let lanes = acc.len().min(row.len());
        for (slot, &b) in acc.iter_mut().zip(row) {
            *slot = a.mul_add(b, *slot);
        }
        self.ops += lanes as u64;
    }

    /// Block fused multiply-add: `acc[r][c] = fma(a[r][k], b[k][c],
    /// acc[r][c])` accumulated over `k` in ascending order — one counted
    /// op per element-update, semantically identical to the row-by-row
    /// loop `for r { for k { fma_row(a[r][k], &b[k], &mut acc[r]) } }`.
    ///
    /// The unarmed fast path processes two output rows at a time with
    /// the accumulators held in locals across the whole `k` loop, so in
    /// a multiversioned AVX2 tile body the compiler keeps them in
    /// vector registers instead of re-loading `acc` once per `k` — the
    /// difference between a memory-bound and an FMA-bound inner kernel.
    /// Per-element accumulation order over `k` is unchanged, so results
    /// are bit-identical to the reference loop.
    #[inline(always)]
    pub fn fma_block<const N: usize>(
        &mut self,
        a: &[[f64; N]; N],
        b: &[[f64; N]; N],
        acc: &mut [[f64; N]; N],
    ) {
        if self.fault_armed {
            // Exact reference order (r, k, c): op indices match the
            // row-by-row formulation element for element.
            for r in 0..N {
                for k in 0..N {
                    let ark = a[r][k];
                    for c in 0..N {
                        acc[r][c] = self.fma(ark, b[k][c], acc[r][c]);
                    }
                }
            }
            return;
        }
        let mut r = 0;
        while r + 2 <= N {
            let mut acc0 = acc[r];
            let mut acc1 = acc[r + 1];
            for k in 0..N {
                let a0 = a[r][k];
                let a1 = a[r + 1][k];
                let brow = &b[k];
                for c in 0..N {
                    acc0[c] = a0.mul_add(brow[c], acc0[c]);
                    acc1[c] = a1.mul_add(brow[c], acc1[c]);
                }
            }
            acc[r] = acc0;
            acc[r + 1] = acc1;
            r += 2;
        }
        if r < N {
            let mut acc0 = acc[r];
            for k in 0..N {
                let a0 = a[r][k];
                let brow = &b[k];
                for c in 0..N {
                    acc0[c] = a0.mul_add(brow[c], acc0[c]);
                }
            }
            acc[r] = acc0;
        }
        self.ops += (N * N * N) as u64;
    }

    /// Addition routed through the op counter.
    #[inline(always)]
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        self.op(a + b)
    }

    /// Multiplication routed through the op counter.
    #[inline(always)]
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.op(a * b)
    }

    /// Division routed through the op counter.
    #[inline(always)]
    pub fn div(&mut self, a: f64, b: f64) -> f64 {
        self.op(a / b)
    }

    /// Exponential through the transcendental (SFU) unit: an armed SFU
    /// fault scales the *argument* (a corrupted range reduction),
    /// modeling the K40's exposed special function unit.
    #[inline(always)]
    pub fn exp(&mut self, x: f64) -> f64 {
        let idx = self.trans_ops;
        self.trans_ops += 1;
        let x = if self.fault_armed && idx == self.fault.sfu_at {
            x * self.fault.sfu_scale
        } else {
            x
        };
        x.exp()
    }

    /// Square root through the transcendental unit (same fault model as
    /// [`TileCtx::exp`]).
    #[inline(always)]
    pub fn sqrt(&mut self, x: f64) -> f64 {
        let idx = self.trans_ops;
        self.trans_ops += 1;
        let x = if self.fault_armed && idx == self.fault.sfu_at {
            x * self.fault.sfu_scale
        } else {
            x
        };
        x.sqrt()
    }

    /// Loads `dst.len()` consecutive elements starting at `start` from
    /// `buf` through the cache hierarchy, observing any corruption pending
    /// on resident lines.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfBounds`] when the range exceeds the
    /// buffer.
    #[inline]
    pub fn load(&mut self, buf: BufferId, start: usize, dst: &mut [f64]) -> Result<(), AccelError> {
        if dst.is_empty() {
            return Ok(());
        }
        // One ISA dispatch per bulk load: the `#[target_feature]`
        // wrapper compiles the whole body — window copy, cache way
        // scans, corruption gate — as one inlined AVX2 region. Called
        // from a kernel's own AVX2 tile wrapper the match folds away
        // and the body inlines into the kernel loop.
        match exec::active() {
            #[cfg(target_arch = "x86_64")]
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            exec::Isa::Avx2 => unsafe { self.load_avx2(buf, start, dst) },
            #[cfg(target_arch = "aarch64")]
            exec::Isa::Neon => self.load_body::<exec::Neon>(buf, start, dst),
            _ => self.load_body::<exec::Scalar>(buf, start, dst),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn load_avx2(
        &mut self,
        buf: BufferId,
        start: usize,
        dst: &mut [f64],
    ) -> Result<(), AccelError> {
        self.load_body::<exec::Avx2>(buf, start, dst)
    }

    #[inline(always)]
    fn load_body<E: exec::KernelExecutor>(
        &mut self,
        buf: BufferId,
        start: usize,
        dst: &mut [f64],
    ) -> Result<(), AccelError> {
        let _scope = phase_if(self.prof, PhaseId::MemLoad);
        self.loads += dst.len() as u64;
        let base = {
            let (base, window) = self.mem.window(buf, start, dst.len())?;
            E::copy_f64(window, dst);
            base
        };
        let wbs = {
            let _scope = phase_if(self.prof, PhaseId::CacheAccess);
            self.caches
                .access_body::<E>(self.unit, base, dst.len() * 8, false)
        };
        if !wbs.is_empty() {
            // Corruption reached DRAM mid-run; the run can no longer be
            // proven golden-equivalent.
            self.caches.corruption_touched = true;
        }
        apply_writebacks(self.mem, &wbs, self.store_log.as_deref_mut());
        // Slow path only for elements on struck lines.
        if self.caches.has_pending_corruption() {
            let _scope = phase_if(self.prof, PhaseId::CorruptionScan);
            for (lo, hi) in self.caches.corrupted_elem_ranges(base, dst.len() * 8) {
                for (i, v) in dst.iter_mut().enumerate().take(hi).skip(lo) {
                    let mask = self.caches.corruption_for(self.unit, base + i * 8);
                    if mask != 0 {
                        *v = f64::from_bits(v.to_bits() ^ mask);
                        // A corrupted value entered the datapath.
                        self.caches.corruption_touched = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Strided bulk load: row `r` (of `dst.len() / width` rows) reads
    /// `width` consecutive elements starting at `start + r * stride`
    /// into `dst[r * width ..]`. Semantically identical to one
    /// [`TileCtx::load`] per row in ascending order — same counters,
    /// same cache touch order, write-backs applied between rows — but
    /// pays the ISA dispatch, phase scope and write-back bookkeeping
    /// once per call instead of once per row. The bulk-tile hot path
    /// for blocked kernels (DGEMM loads 32 rows per k-step).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfBounds`] when any row exceeds the
    /// buffer; rows before the offending one are already loaded.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or does not divide `dst.len()`.
    #[inline]
    pub fn load_rows(
        &mut self,
        buf: BufferId,
        start: usize,
        stride: usize,
        width: usize,
        dst: &mut [f64],
    ) -> Result<(), AccelError> {
        assert!(
            width > 0 && dst.len().is_multiple_of(width),
            "load_rows width {width} must divide dst length {}",
            dst.len()
        );
        if dst.is_empty() {
            return Ok(());
        }
        match exec::active() {
            #[cfg(target_arch = "x86_64")]
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            exec::Isa::Avx2 => unsafe { self.load_rows_avx2(buf, start, stride, width, dst) },
            #[cfg(target_arch = "aarch64")]
            exec::Isa::Neon => self.load_rows_body::<exec::Neon>(buf, start, stride, width, dst),
            _ => self.load_rows_body::<exec::Scalar>(buf, start, stride, width, dst),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn load_rows_avx2(
        &mut self,
        buf: BufferId,
        start: usize,
        stride: usize,
        width: usize,
        dst: &mut [f64],
    ) -> Result<(), AccelError> {
        self.load_rows_body::<exec::Avx2>(buf, start, stride, width, dst)
    }

    #[inline(always)]
    fn load_rows_body<E: exec::KernelExecutor>(
        &mut self,
        buf: BufferId,
        start: usize,
        stride: usize,
        width: usize,
        dst: &mut [f64],
    ) -> Result<(), AccelError> {
        let _scope = phase_if(self.prof, PhaseId::MemLoad);
        self.loads += dst.len() as u64;
        let rows = dst.len() / width;
        // Fast path: while no flip is pending anywhere, no row can
        // observe corruption and no eviction can write one back — cache
        // state cannot affect loaded data, only the other way around.
        // One window borrow covers every row, copies run back to back,
        // and the per-row touch stream (identical order, so ticks, LRU
        // and hit counters match the slow path bit for bit) follows.
        // Flips are only added by strikes, never by loads, so the gate
        // cannot flip mid-call.
        if !self.caches.has_pending_corruption() {
            let span = (rows - 1) * stride + width;
            if let Ok((base, window)) = self.mem.window(buf, start, span) {
                for (r, out) in dst.chunks_exact_mut(width).enumerate() {
                    E::copy_f64(&window[r * stride..r * stride + width], out);
                }
                let _scope = phase_if(self.prof, PhaseId::CacheAccess);
                let mut wbs = Vec::new();
                for r in 0..rows {
                    self.caches.access_into::<E>(
                        self.unit,
                        base + r * stride * 8,
                        width * 8,
                        false,
                        &mut wbs,
                    );
                }
                debug_assert!(wbs.is_empty(), "write-backs require pending flips");
                return Ok(());
            }
            // Span lookup failed: fall through so the error surfaces
            // with per-row semantics (rows before the bad one load).
        }
        let mut wbs = Vec::new();
        let mut ranges = Vec::new();
        for (r, out) in dst.chunks_exact_mut(width).enumerate() {
            let rstart = start + r * stride;
            let base = {
                let (base, window) = self.mem.window(buf, rstart, width)?;
                E::copy_f64(window, out);
                base
            };
            {
                let _scope = phase_if(self.prof, PhaseId::CacheAccess);
                self.caches
                    .access_into::<E>(self.unit, base, width * 8, false, &mut wbs);
            }
            if !wbs.is_empty() {
                // Corruption reached DRAM mid-run; the run can no
                // longer be proven golden-equivalent.
                self.caches.corruption_touched = true;
                apply_writebacks(self.mem, &wbs, self.store_log.as_deref_mut());
                wbs.clear();
            }
            if self.caches.has_pending_corruption() {
                let _scope = phase_if(self.prof, PhaseId::CorruptionScan);
                self.caches
                    .corrupted_ranges_into(base, width * 8, &mut ranges);
                for &(lo, hi) in &ranges {
                    for (i, v) in out.iter_mut().enumerate().take(hi).skip(lo) {
                        let mask = self.caches.corruption_for(self.unit, base + i * 8);
                        if mask != 0 {
                            *v = f64::from_bits(v.to_bits() ^ mask);
                            // A corrupted value entered the datapath.
                            self.caches.corruption_touched = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads a single element through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfBounds`] when `index` exceeds the
    /// buffer.
    pub fn read_one(&mut self, buf: BufferId, index: usize) -> Result<f64, AccelError> {
        let mut v = [0.0];
        self.load(buf, index, &mut v)?;
        Ok(v[0])
    }

    /// Stores `src` to consecutive elements starting at `start` of `buf`
    /// through the cache hierarchy. An armed core-control fault makes the
    /// affected stores write stale store-queue data (the previously stored
    /// value) instead of the computed one.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfBounds`] when the range exceeds the
    /// buffer.
    #[inline]
    pub fn store(&mut self, buf: BufferId, start: usize, src: &[f64]) -> Result<(), AccelError> {
        if src.is_empty() {
            return Ok(());
        }
        // Same single-dispatch structure as [`TileCtx::load`].
        match exec::active() {
            #[cfg(target_arch = "x86_64")]
            // Safety: `exec::active` only reports Avx2 after runtime
            // detection confirmed AVX2 + FMA on this host.
            exec::Isa::Avx2 => unsafe { self.store_avx2(buf, start, src) },
            #[cfg(target_arch = "aarch64")]
            exec::Isa::Neon => self.store_body::<exec::Neon>(buf, start, src),
            _ => self.store_body::<exec::Scalar>(buf, start, src),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn store_avx2(
        &mut self,
        buf: BufferId,
        start: usize,
        src: &[f64],
    ) -> Result<(), AccelError> {
        self.store_body::<exec::Avx2>(buf, start, src)
    }

    #[inline(always)]
    fn store_body<E: exec::KernelExecutor>(
        &mut self,
        buf: BufferId,
        start: usize,
        src: &[f64],
    ) -> Result<(), AccelError> {
        let _scope = phase_if(self.prof, PhaseId::MemStore);
        self.stores += src.len() as u64;
        let fault_stores = self.fault.store_at != u64::MAX;
        let base = {
            let (base, window) = self.mem.window_mut(buf, start, src.len())?;
            if fault_stores {
                for (slot, &v) in window.iter_mut().zip(src) {
                    let idx = self.store_ops;
                    self.store_ops += 1;
                    if idx >= self.fault.store_at
                        && idx < self.fault.store_at + self.fault.store_len
                    {
                        *slot = self.last_store; // stale store-queue entry
                    } else {
                        *slot = v;
                        self.last_store = v;
                    }
                }
            } else {
                E::copy_f64(src, window);
                self.store_ops += src.len() as u64;
                if let Some(&last) = src.last() {
                    self.last_store = last;
                }
            }
            base
        };
        if let Some(log) = self.store_log.as_deref_mut() {
            log.record(buf, start, src.len());
        }
        let wbs = {
            let _scope = phase_if(self.prof, PhaseId::CacheAccess);
            self.caches
                .access_body::<E>(self.unit, base, src.len() * 8, true)
        };
        if !wbs.is_empty() {
            self.caches.corruption_touched = true;
        }
        apply_writebacks(self.mem, &wbs, self.store_log.as_deref_mut());
        // A program store supersedes pending corruption of the element.
        if self.caches.has_pending_corruption() {
            let _scope = phase_if(self.prof, PhaseId::CorruptionScan);
            for (lo, hi) in self.caches.corrupted_elem_ranges(base, src.len() * 8) {
                for i in lo..hi {
                    self.caches.note_element_write(self.unit, base + i * 8);
                }
            }
        }
        Ok(())
    }

    /// Stores a single element through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfBounds`] when `index` exceeds the
    /// buffer.
    pub fn write_one(&mut self, buf: BufferId, index: usize, value: f64) -> Result<(), AccelError> {
        self.store(buf, index, &[value])
    }

    pub(crate) fn drain_counters(&self) -> MachineCounters {
        MachineCounters {
            ops: self.ops,
            trans_ops: self.trans_ops,
            loads: self.loads,
            stores: self.stores,
        }
    }
}

/// Applies corrupted write-backs (evicted dirty corrupted lines) to
/// backing memory, recording touched elements of a watched buffer.
pub(crate) fn apply_writebacks(
    mem: &mut DeviceMemory,
    wbs: &[crate::cache::WriteBack],
    mut log: Option<&mut StoreLog>,
) {
    for wb in wbs {
        if let Some(addr) = mem.elem_at_byte(wb.byte_addr) {
            // Ignore failures: a write-back beyond any buffer means the
            // strike corrupted padding bytes, which no element observes.
            let _ = mem.flip_bits(addr.buffer, addr.index, wb.mask);
            if let Some(l) = log.as_deref_mut() {
                l.record(addr.buffer, addr.index, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheHierarchy;
    use crate::config::DeviceConfig;

    fn machine() -> (DeviceMemory, CacheHierarchy) {
        let cfg = DeviceConfig::builder("t")
            .units(2)
            .max_threads_per_unit(64)
            .build()
            .unwrap();
        (DeviceMemory::new(), CacheHierarchy::new(&cfg))
    }

    #[test]
    fn ops_counted_and_clean_without_fault() {
        let (mut mem, mut caches) = machine();
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
        let r = ctx.fma(2.0, 3.0, 1.0);
        assert_eq!(r, 7.0);
        assert_eq!(ctx.add(1.0, 1.0), 2.0);
        assert_eq!(ctx.mul(2.0, 4.0), 8.0);
        assert_eq!(ctx.div(9.0, 3.0), 3.0);
        assert_eq!(ctx.ops, 4);
        let e = ctx.exp(0.0);
        assert_eq!(e, 1.0);
        assert_eq!(ctx.trans_ops, 1);
    }

    #[test]
    fn logic_fault_hits_exact_op() {
        let (mut mem, mut caches) = machine();
        let mut fault = TileFault::none();
        fault.logic_at = 1;
        fault.logic_lanes = 1;
        fault.logic_mask = 1 << 63; // sign flip
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
        assert_eq!(ctx.op(5.0), 5.0); // op 0 clean
        assert_eq!(ctx.op(5.0), -5.0); // op 1 corrupted
        assert_eq!(ctx.op(5.0), 5.0); // op 2 clean
    }

    #[test]
    fn vector_fault_hits_lane_burst() {
        let (mut mem, mut caches) = machine();
        let mut fault = TileFault::none();
        fault.logic_at = 2;
        fault.logic_lanes = 3;
        fault.logic_mask = 1 << 63;
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
        let got: Vec<f64> = (0..6).map(|_| ctx.op(1.0)).collect();
        assert_eq!(got, vec![1.0, 1.0, -1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn sfu_fault_scales_argument() {
        let (mut mem, mut caches) = machine();
        let mut fault = TileFault::none();
        fault.sfu_at = 0;
        // A corrupted range reduction off by -2^5: exp(-32x) explodes
        // for negative arguments.
        fault.sfu_scale = -32.0;
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
        let corrupted = ctx.exp(-1.0);
        assert!(corrupted > 1e13, "exp(32) expected, got {corrupted}");
        let clean = ctx.exp(-1.0); // only trans op 0 was armed
        assert!((clean - (-1.0f64).exp()).abs() < 1e-18);
    }

    #[test]
    fn garble_replays_stale_values() {
        let (mut mem, mut caches) = machine();
        let mut fault = TileFault::none();
        fault.garble = true;
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
        let results: Vec<f64> = (0..64).map(|i| ctx.op(10.0 + i as f64)).collect();
        let wrong = results
            .iter()
            .enumerate()
            .filter(|(i, &v)| v != 10.0 + *i as f64)
            .count();
        assert!(wrong > 40, "most op results must be wrong, got {wrong}/64");
        // And every produced value stays near the anchor's magnitude
        // (wrong-address data, not random bit garbage).
        for &v in &results {
            assert!((7.0..80.0).contains(&v), "implausible {v}");
        }
    }

    #[test]
    fn load_store_roundtrip_through_caches() {
        let (mut mem, mut caches) = machine();
        let buf = mem.alloc("data", 64);
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        ctx.store(buf, 8, &src).unwrap();
        let mut dst = vec![0.0; 16];
        ctx.load(buf, 8, &mut dst).unwrap();
        assert_eq!(dst, src);
        assert_eq!(ctx.loads, 16);
        assert_eq!(ctx.stores, 16);
        assert!(ctx.caches.stats().l2_hits > 0, "reload must hit the cache");
    }

    #[test]
    fn out_of_bounds_load_rejected() {
        let (mut mem, mut caches) = machine();
        let buf = mem.alloc("data", 4);
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
        let mut dst = vec![0.0; 8];
        assert!(ctx.load(buf, 0, &mut dst).is_err());
        assert!(ctx.store(buf, 2, &[0.0; 4]).is_err());
    }

    #[test]
    fn stale_store_fault_replays_previous_value() {
        let (mut mem, mut caches) = machine();
        let buf = mem.alloc("out", 8);
        let mut fault = TileFault::none();
        fault.store_at = 2;
        fault.store_len = 2;
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
        ctx.store(buf, 0, &[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        let mem2 = ctx.mem.to_vec(buf).unwrap();
        // Stores 2 and 3 replay the last good value (20.0).
        assert_eq!(&mem2[..5], &[10.0, 20.0, 20.0, 20.0, 50.0]);
    }

    #[test]
    fn corrupted_line_observed_by_load() {
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng as SmallRng;
        let (mut mem, mut caches) = machine();
        let buf = mem.alloc_init("in", &vec![1.0; 32]);
        let mut rng = SmallRng::seed_from_u64(3);
        {
            let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
            let mut dst = vec![0.0; 32];
            ctx.load(buf, 0, &mut dst).unwrap(); // bring lines in
        }
        let info = caches.strike_l2(&mut rng, 1 << 63).unwrap();
        let victim = mem.elem_at_byte(info.byte_addr).unwrap();
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
        let got = ctx.read_one(buf, victim.index).unwrap();
        assert_eq!(got, -1.0, "sign-flipped while resident");
        // Backing memory itself stays clean.
        assert_eq!(ctx.mem.read(buf, victim.index).unwrap(), 1.0);
    }

    #[test]
    fn store_log_records_only_watched_buffer_spans() {
        let (mut mem, mut caches) = machine();
        let out = mem.alloc("out", 32);
        let other = mem.alloc("other", 32);
        let mut log = StoreLog::new(out);
        {
            let mut ctx =
                TileCtx::new(&mut mem, &mut caches, 0, TileFault::none()).with_store_log(&mut log);
            ctx.store(out, 4, &[1.0; 8]).unwrap();
            ctx.store(other, 0, &[2.0; 4]).unwrap();
            ctx.store(out, 20, &[3.0; 2]).unwrap();
        }
        assert_eq!(log.spans, vec![(4, 8), (20, 2)]);
    }

    #[test]
    fn program_store_clears_pending_corruption() {
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng as SmallRng;
        let (mut mem, mut caches) = machine();
        let buf = mem.alloc("out", 32);
        let mut rng = SmallRng::seed_from_u64(4);
        {
            let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
            ctx.store(buf, 0, &vec![5.0; 32]).unwrap();
        }
        let info = caches.strike_l2(&mut rng, 0xFF).unwrap();
        let victim = mem.elem_at_byte(info.byte_addr).unwrap();
        let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
        ctx.write_one(buf, victim.index, 9.0).unwrap();
        assert_eq!(ctx.read_one(buf, victim.index).unwrap(), 9.0);
    }

    /// `load_rows` is a drop-in for one `load` per row: same bytes,
    /// same loads counter, same cache hit/miss stream — both in the
    /// clean fast path and with pending corruption forcing the
    /// per-row slow path.
    #[test]
    fn load_rows_matches_per_row_loads() {
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng as SmallRng;
        let data: Vec<f64> = (0..96).map(|i| f64::from(i) * 0.5 - 3.0).collect();
        let run = |strike: bool, bulk: bool| {
            let (mut mem, mut caches) = machine();
            let buf = mem.alloc_init("in", &data);
            if strike {
                {
                    let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
                    let mut warm = vec![0.0; data.len()];
                    ctx.load(buf, 0, &mut warm).unwrap();
                }
                let mut rng = SmallRng::seed_from_u64(9);
                caches.strike_l2(&mut rng, 1 << 62).expect("line resident");
                assert!(caches.has_pending_corruption());
            }
            let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, TileFault::none());
            let (stride, width, rows) = (12usize, 5usize, 7usize);
            let mut dst = vec![0.0; rows * width];
            if bulk {
                ctx.load_rows(buf, 2, stride, width, &mut dst).unwrap();
            } else {
                for (r, out) in dst.chunks_exact_mut(width).enumerate() {
                    ctx.load(buf, 2 + r * stride, out).unwrap();
                }
            }
            let loads = ctx.loads;
            let stats = caches.stats();
            let bits: Vec<u64> = dst.iter().map(|v| v.to_bits()).collect();
            (bits, loads, stats.l1_hits, stats.l1_misses, stats.l2_hits)
        };
        for strike in [false, true] {
            assert_eq!(
                run(strike, true),
                run(strike, false),
                "strike={strike}: bulk and per-row loads must agree"
            );
        }
    }

    /// `fma_block` equals the row-by-row reference loop bit for bit,
    /// counts one op per element update, and lands an armed logic
    /// fault on exactly the same op index as the reference.
    #[test]
    fn fma_block_matches_reference_loop() {
        const N: usize = 4;
        let mut a = [[0.0; N]; N];
        let mut b = [[0.0; N]; N];
        for r in 0..N {
            for c in 0..N {
                a[r][c] = (r * N + c) as f64 * 0.25 - 1.5;
                b[r][c] = 1.0 / ((r + c) as f64 + 1.0);
            }
        }
        let reference = |fault: TileFault| {
            let (mut mem, mut caches) = machine();
            let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
            let mut acc = [[0.5; N]; N];
            for r in 0..N {
                for k in 0..N {
                    for c in 0..N {
                        acc[r][c] = ctx.fma(a[r][k], b[k][c], acc[r][c]);
                    }
                }
            }
            (acc, ctx.ops)
        };
        let blocked = |fault: TileFault| {
            let (mut mem, mut caches) = machine();
            let mut ctx = TileCtx::new(&mut mem, &mut caches, 0, fault);
            let mut acc = [[0.5; N]; N];
            ctx.fma_block(&a, &b, &mut acc);
            (acc, ctx.ops)
        };
        let faults = {
            let mut mid = TileFault::none();
            mid.logic_at = (N * N * N / 2) as u64;
            mid.logic_lanes = 3;
            mid.logic_mask = 1 << 63;
            [TileFault::none(), mid]
        };
        for fault in faults {
            let (ref_acc, ref_ops) = reference(fault);
            let (blk_acc, blk_ops) = blocked(fault);
            assert_eq!(blk_ops, ref_ops, "op count");
            for r in 0..N {
                for c in 0..N {
                    assert_eq!(
                        blk_acc[r][c].to_bits(),
                        ref_acc[r][c].to_bits(),
                        "acc[{r}][{c}] under fault at {}",
                        fault.logic_at
                    );
                }
            }
        }
    }
}
