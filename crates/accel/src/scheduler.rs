//! Dispatch planning and scheduler-exposure models.
//!
//! The two devices distribute tiles very differently:
//!
//! * the K40's **hardware block scheduler** dispatches thread blocks
//!   round-robin over the SMs in *waves* — as many blocks run
//!   concurrently as the device can hold resident
//!   ([`crate::config::DeviceConfig::concurrent_tiles`]);
//! * the Phi's **OS scheduler** (OpenMP-style static scheduling)
//!   partitions the whole iteration space into *contiguous chunks*, one
//!   per core. Corrupted per-core task state therefore damages a
//!   contiguous band of the output — the mechanism behind the paper's
//!   large square/cubic Phi error patterns.
//!
//! Where the devices differ — and what §V-A of the paper stresses — is how
//! much *irradiated state* scheduling exposes:
//!
//! * the K40's **hardware scheduler** keeps an on-chip entry per managed
//!   thread block, so its neutron cross-section grows with the number of
//!   instantiated threads (the paper measures a 7× DGEMM FIT increase
//!   from 2¹⁰ to 2¹² matrices);
//! * the Phi's **OS scheduler** lives in DRAM outside the beam spot; only
//!   small per-core hardware task state (4 thread contexts per core) is
//!   exposed, so FIT grows only mildly with input (1.8× in the paper).

use serde::{Deserialize, Serialize};

use crate::config::{DeviceConfig, ResidencyPolicy, SchedulerKind};

/// How tiles map to execution units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Assignment {
    /// Hardware scheduler: round-robin over units within fixed-size
    /// waves.
    RoundRobinWaves,
    /// OS static scheduling: contiguous chunks of the iteration space,
    /// one per unit.
    StaticChunks {
        /// Tiles per chunk.
        chunk: usize,
    },
}

/// A static dispatch plan: which unit runs each tile and in which wave.
///
/// Iterative kernels launch one parallel region per time step with a
/// barrier in between; scheduling state never outlives a launch, so both
/// wave and chunk geometry are framed *within* each launch of
/// `launch_tiles` tiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchPlan {
    units: usize,
    wave_size: usize,
    tiles: usize,
    launch_tiles: usize,
    assignment: Assignment,
}

impl DispatchPlan {
    /// Plans `tiles` tiles of `threads_per_tile` threads (each using
    /// `local_mem_per_tile` bytes of shared memory) on `cfg`, with
    /// `launch_tiles` tiles per kernel launch.
    pub fn new(
        cfg: &DeviceConfig,
        tiles: usize,
        launch_tiles: usize,
        threads_per_tile: usize,
        local_mem_per_tile: usize,
    ) -> Self {
        let launch_tiles = launch_tiles.clamp(1, tiles.max(1));
        let wave_size = cfg
            .concurrent_tiles(threads_per_tile, local_mem_per_tile)
            .max(1);
        let assignment = match cfg.scheduler() {
            SchedulerKind::Hardware => Assignment::RoundRobinWaves,
            SchedulerKind::OperatingSystem => Assignment::StaticChunks {
                // OpenMP-style static partition of one launch's iteration
                // space over the cores.
                chunk: launch_tiles.div_ceil(cfg.units()).max(1),
            },
        };
        DispatchPlan {
            units: cfg.units(),
            wave_size,
            tiles,
            launch_tiles,
            assignment,
        }
    }

    /// Splits a dispatch position into (launch index, position within the
    /// launch).
    fn frame(&self, pos: usize) -> (usize, usize) {
        (pos / self.launch_tiles, pos % self.launch_tiles)
    }

    /// Waves (or chunks) per launch.
    fn spans_per_launch(&self) -> usize {
        let span = match self.assignment {
            Assignment::RoundRobinWaves => self.wave_size,
            Assignment::StaticChunks { chunk } => chunk,
        };
        self.launch_tiles.div_ceil(span).max(1)
    }

    /// Total tiles planned.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Tiles resident concurrently (wave width).
    pub fn wave_size(&self) -> usize {
        self.wave_size
    }

    /// Number of waves needed.
    pub fn waves(&self) -> usize {
        self.tiles.div_ceil(self.wave_size.max(1))
    }

    /// The unit executing the tile at dispatch position `pos`.
    pub fn unit_of(&self, pos: usize) -> usize {
        let (_, within) = self.frame(pos);
        match self.assignment {
            Assignment::RoundRobinWaves => (within % self.wave_size) % self.units,
            Assignment::StaticChunks { chunk } => (within / chunk).min(self.units - 1),
        }
    }

    /// The wave containing dispatch position `pos` (chunked plans treat
    /// each chunk as its own wave). Waves never cross launch barriers.
    pub fn wave_of(&self, pos: usize) -> usize {
        let (launch, within) = self.frame(pos);
        let span = match self.assignment {
            Assignment::RoundRobinWaves => self.wave_size,
            Assignment::StaticChunks { chunk } => chunk,
        };
        launch * self.spans_per_launch() + within / span
    }

    /// Dispatch positions belonging to the wave of `pos` that have not yet
    /// executed when `pos` is about to run (i.e. positions `pos..end`): the
    /// candidate victims of a register-file strike landing "now".
    pub fn pending_in_wave(&self, pos: usize) -> std::ops::Range<usize> {
        let (launch, within) = self.frame(pos);
        let span = match self.assignment {
            Assignment::RoundRobinWaves => self.wave_size,
            Assignment::StaticChunks { chunk } => chunk,
        };
        let wave_end_within = ((within / span + 1) * span).min(self.launch_tiles);
        let wave_end = (launch * self.launch_tiles + wave_end_within).min(self.tiles);
        pos..wave_end
    }

    /// Records the plan's geometry as gauges: tiles, wave width, wave
    /// count and unit count. Called by the engine once per run when a
    /// metrics registry is attached.
    pub fn observe(&self, metrics: &radcrit_obs::MetricsRegistry) {
        metrics.gauge_set("radcrit_plan_tiles", &[], self.tiles as f64);
        metrics.gauge_set("radcrit_plan_wave_size", &[], self.wave_size as f64);
        metrics.gauge_set("radcrit_plan_waves", &[], self.waves() as f64);
        metrics.gauge_set("radcrit_plan_units", &[], self.units as f64);
    }

    /// The dispatch positions garbled when the task/scheduler state of
    /// `pos`'s unit is corrupted at the instant `pos` starts: every
    /// not-yet-executed position of the same unit within the same
    /// wave/chunk. For a chunked (OS) plan this is the *contiguous
    /// remainder of the core's chunk*, for a wave plan the unit's
    /// remaining slots in the wave.
    pub fn unit_garble_applies(&self, struck_pos: usize, pos: usize) -> bool {
        pos >= struck_pos
            && self.wave_of(pos) == self.wave_of(struck_pos)
            && self.unit_of(pos) == self.unit_of(struck_pos)
    }
}

/// Relative amounts of exposed (irradiated) state per structure class for
/// one program on one device, in arbitrary area units. The fault sampler
/// turns these into a site-selection distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExposureModel {
    /// Scheduler state: hardware entries per resident thread (K40) or a
    /// small per-core constant (Phi).
    pub scheduler: f64,
    /// Register-file bits holding live or waiting thread data.
    pub register_file: f64,
    /// Occupied cache capacity (shared L2), in bytes.
    pub l2: f64,
    /// Occupied cache capacity (all L1s), in bytes.
    pub l1: f64,
}

impl ExposureModel {
    /// Computes exposure for a program with `tiles` tiles of
    /// `threads_per_tile` threads, where the caches hold
    /// `l2_resident_bytes`/`l1_resident_bytes` on average.
    ///
    /// Scheduler exposure:
    /// * [`SchedulerKind::Hardware`]: proportional to *instantiated*
    ///   threads (every block occupies a scheduler entry until retired) —
    ///   ~256 bytes of queue state per 32-thread warp.
    /// * [`SchedulerKind::OperatingSystem`]: per-core hardware task state
    ///   only (~64 bytes per hardware thread context), independent of the
    ///   number of software tasks parked in DRAM.
    ///
    /// Register exposure:
    /// * [`ResidencyPolicy::RegisterResident`]: waiting threads keep their
    ///   data in registers, so exposure grows with instantiated threads up
    ///   to the register file capacity.
    /// * [`ResidencyPolicy::DramParked`]: only the running hardware
    ///   threads' registers are exposed.
    pub fn for_program(
        cfg: &DeviceConfig,
        instantiated_threads: usize,
        resident_threads: usize,
        l2_resident_bytes: f64,
        l1_resident_bytes: f64,
    ) -> Self {
        let instantiated = instantiated_threads as f64;
        let resident = resident_threads as f64;

        let scheduler = match cfg.scheduler() {
            // ~256 bytes of hardware queue, dependency and dispatch state
            // per managed 32-thread warp: this is the structure whose
            // growth with the thread count drives the K40's DGEMM FIT
            // increase (SS V-A point 1).
            SchedulerKind::Hardware => instantiated / 32.0 * 256.0,
            // 4 hardware contexts per core, ~64 bytes each; the software
            // run queue itself lives in unirradiated DRAM.
            SchedulerKind::OperatingSystem => (cfg.units() * 4 * 64) as f64,
        };

        let rf_capacity = (cfg.register_file_bytes_per_unit() * cfg.units()) as f64;
        // ~128 bytes (sixteen f64 registers) of live state per *resident*
        // thread: pending blocks wait in the scheduler queue without a
        // register allocation, so register exposure is bounded by
        // occupancy (this is what keeps LavaMD's register population
        // small on the K40 despite its huge thread count, SS V-B). The
        // residency policy determines what "resident" means: whole
        // waiting warps on the K40, only the hardware contexts on the
        // Phi — both already folded into `resident_threads`.
        let register_file = match cfg.residency() {
            ResidencyPolicy::RegisterResident | ResidencyPolicy::DramParked => {
                (resident * 128.0).min(rf_capacity)
            }
        };

        ExposureModel {
            scheduler,
            register_file,
            l2: l2_resident_bytes,
            l1: l1_resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn plan_covers_all_tiles_in_waves() {
        let cfg = DeviceConfig::kepler_k40();
        let plan = DispatchPlan::new(&cfg, 1000, 1000, 256, 0);
        assert_eq!(plan.tiles(), 1000);
        assert_eq!(plan.wave_size(), 120); // 8 per SM x 15 SMs
        assert_eq!(plan.waves(), 9);
        assert_eq!(plan.wave_of(0), 0);
        assert_eq!(plan.wave_of(119), 0);
        assert_eq!(plan.wave_of(120), 1);
    }

    #[test]
    fn k40_units_cycle_round_robin() {
        let cfg = DeviceConfig::kepler_k40();
        let plan = DispatchPlan::new(&cfg, 200, 200, 2048, 0); // one tile per SM
        assert_eq!(plan.unit_of(0), 0);
        assert_eq!(plan.unit_of(1), 1);
        assert_eq!(plan.unit_of(14), 14);
        assert_eq!(plan.unit_of(15), 0); // next wave starts at unit 0
        for pos in 0..200 {
            assert!(plan.unit_of(pos) < 15);
        }
    }

    #[test]
    fn phi_units_get_contiguous_chunks() {
        // OS static scheduling: 228 tiles over 57 cores = 4-tile chunks.
        let cfg = DeviceConfig::xeon_phi_3120a();
        let plan = DispatchPlan::new(&cfg, 228, 228, 4, 0);
        assert_eq!(plan.unit_of(0), 0);
        assert_eq!(plan.unit_of(3), 0);
        assert_eq!(plan.unit_of(4), 1);
        assert_eq!(plan.unit_of(227), 56);
        for pos in 0..228 {
            assert!(plan.unit_of(pos) < 57);
        }
    }

    #[test]
    fn k40_pending_in_wave_shrinks_to_wave_end() {
        let cfg = DeviceConfig::kepler_k40();
        let plan = DispatchPlan::new(&cfg, 100, 100, 2048, 0); // wave size 15
        assert_eq!(plan.pending_in_wave(0), 0..15);
        assert_eq!(plan.pending_in_wave(14), 14..15);
        assert_eq!(plan.pending_in_wave(99), 99..100);
    }

    #[test]
    fn phi_pending_is_the_chunk_remainder() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let plan = DispatchPlan::new(&cfg, 114, 114, 4, 0); // chunks of 2
        assert_eq!(plan.pending_in_wave(0), 0..2);
        assert_eq!(plan.pending_in_wave(1), 1..2);
        assert_eq!(plan.pending_in_wave(2), 2..4);
    }

    #[test]
    fn chunks_are_framed_per_launch() {
        // An iterative kernel: 4 launches of 114 tiles on 57 cores =
        // 2-tile chunks inside each launch.
        let cfg = DeviceConfig::xeon_phi_3120a();
        let plan = DispatchPlan::new(&cfg, 456, 114, 4, 0);
        assert_eq!(plan.unit_of(0), 0);
        assert_eq!(plan.unit_of(113), 56);
        assert_eq!(plan.unit_of(114), 0, "a new launch restarts at core 0");
        // A garble at the end of launch 0 cannot leak into launch 1.
        let garbled: Vec<usize> = (0..456)
            .filter(|&p| plan.unit_garble_applies(113, p))
            .collect();
        assert_eq!(garbled, vec![113]);
    }

    #[test]
    fn unit_garble_span_is_contiguous_on_phi() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let plan = DispatchPlan::new(&cfg, 570, 570, 4, 0); // chunks of 10
                                                            // Strike mid-chunk of core 3 (positions 30..40).
        let struck = 34;
        let garbled: Vec<usize> = (0..570)
            .filter(|&p| plan.unit_garble_applies(struck, p))
            .collect();
        assert_eq!(garbled, (34..40).collect::<Vec<_>>());
    }

    #[test]
    fn partial_final_launch_is_well_formed() {
        // 250 tiles in launches of 100: the last launch has 50 tiles.
        let cfg = DeviceConfig::xeon_phi_3120a();
        let plan = DispatchPlan::new(&cfg, 250, 100, 4, 0);
        for pos in 0..250 {
            assert!(plan.unit_of(pos) < 57, "pos {pos}");
            let pending = plan.pending_in_wave(pos);
            assert!(
                pending.start == pos && pending.end <= 250,
                "pos {pos}: {pending:?}"
            );
            assert!(!pending.is_empty());
        }
        // Chunk of ceil(100/57)=2: position 248 is in the final launch's
        // chunk structure.
        assert_eq!(plan.unit_of(200), 0, "new launch restarts");
        assert_eq!(plan.pending_in_wave(249), 249..250);
    }

    #[test]
    fn launch_larger_than_tiles_clamps() {
        let cfg = DeviceConfig::kepler_k40();
        let plan = DispatchPlan::new(&cfg, 10, 100, 2048, 0);
        for pos in 0..10 {
            assert!(plan.unit_of(pos) < 15);
            assert!(plan.pending_in_wave(pos).end <= 10);
        }
    }

    #[test]
    fn unit_garble_span_is_strided_on_k40() {
        let cfg = DeviceConfig::kepler_k40();
        let plan = DispatchPlan::new(&cfg, 100, 100, 2048, 0); // waves of 15
        let struck = 2;
        let garbled: Vec<usize> = (0..100)
            .filter(|&p| plan.unit_garble_applies(struck, p))
            .collect();
        assert_eq!(garbled, vec![2], "one block per SM per wave on the K40");
    }

    #[test]
    fn hardware_scheduler_exposure_grows_with_threads() {
        let k40 = DeviceConfig::kepler_k40();
        let small = ExposureModel::for_program(&k40, 4096 * 16, 30_000, 0.0, 0.0);
        let large = ExposureModel::for_program(&k40, 65536 * 16, 30_000, 0.0, 0.0);
        assert!(
            large.scheduler / small.scheduler > 10.0,
            "16x threads must expose ~16x hardware scheduler state"
        );
    }

    #[test]
    fn os_scheduler_exposure_is_flat() {
        let phi = DeviceConfig::xeon_phi_3120a();
        let small = ExposureModel::for_program(&phi, 4096 * 4, 228, 0.0, 0.0);
        let large = ExposureModel::for_program(&phi, 65536 * 4, 228, 0.0, 0.0);
        assert_eq!(small.scheduler, large.scheduler);
    }

    #[test]
    fn register_exposure_follows_residency() {
        let k40 = DeviceConfig::kepler_k40();
        // Doubling *resident* threads doubles register exposure until the
        // file saturates; pending blocks expose nothing.
        let small = ExposureModel::for_program(&k40, 1 << 20, 8_000, 0.0, 0.0);
        let large = ExposureModel::for_program(&k40, 1 << 20, 16_000, 0.0, 0.0);
        assert!((large.register_file / small.register_file - 2.0).abs() < 0.01);
    }

    #[test]
    fn k40_register_exposure_saturates_at_capacity() {
        let k40 = DeviceConfig::kepler_k40();
        let huge = ExposureModel::for_program(&k40, usize::MAX / 1024, usize::MAX / 1024, 0.0, 0.0);
        let rf_capacity = (k40.register_file_bytes_per_unit() * k40.units()) as f64;
        assert_eq!(huge.register_file, rf_capacity);
    }
}
