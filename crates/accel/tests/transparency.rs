//! Model-based property tests: without a strike, the cache hierarchy and
//! TileCtx must be completely transparent — every load observes exactly
//! what was last stored, for arbitrary interleavings of accesses across
//! buffers and units. Golden runs depend on this invariant bit for bit.

use proptest::prelude::*;

use radcrit_accel::cache::CacheGeometry;
use radcrit_accel::config::DeviceConfig;
use radcrit_accel::engine::Engine;
use radcrit_accel::error::AccelError;
use radcrit_accel::memory::{BufferId, DeviceMemory};
use radcrit_accel::program::{TileCtx, TileId, TiledProgram};
use radcrit_core::shape::OutputShape;

/// One step of the random access program.
#[derive(Debug, Clone)]
enum Access {
    Store {
        buf: usize,
        start: usize,
        values: Vec<f64>,
    },
    Load {
        buf: usize,
        start: usize,
        len: usize,
    },
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        (
            0usize..3,
            0usize..48,
            proptest::collection::vec(-1e6f64..1e6, 1..16)
        )
            .prop_map(|(buf, start, values)| Access::Store { buf, start, values }),
        (0usize..3, 0usize..48, 1usize..16).prop_map(|(buf, start, len)| Access::Load {
            buf,
            start,
            len
        }),
    ]
}

/// A program that replays the access trace through TileCtx, one tile per
/// access, and checks every load against a plain `Vec<f64>` model.
#[derive(Debug)]
struct Replay {
    trace: Vec<Access>,
    model: Vec<Vec<f64>>,
    bufs: Vec<BufferId>,
    out: Option<BufferId>,
    failures: usize,
}

const BUF_LEN: usize = 64;

impl TiledProgram for Replay {
    fn name(&self) -> &str {
        "replay"
    }

    fn tile_count(&self) -> usize {
        self.trace.len().max(1)
    }

    fn threads_per_tile(&self) -> usize {
        1
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.bufs = (0..3)
            .map(|i| mem.alloc(format!("b{i}"), BUF_LEN))
            .collect();
        self.out = Some(mem.alloc("out", 1));
        self.model = vec![vec![0.0; BUF_LEN]; 3];
        self.failures = 0;
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        if self.trace.is_empty() {
            return ctx.write_one(self.out.expect("setup"), 0, 1.0);
        }
        match self.trace[tile.index()].clone() {
            Access::Store { buf, start, values } => {
                let end = (start + values.len()).min(BUF_LEN);
                let values = &values[..end - start];
                ctx.store(self.bufs[buf], start, values)?;
                self.model[buf][start..end].copy_from_slice(values);
            }
            Access::Load { buf, start, len } => {
                let end = (start + len).min(BUF_LEN);
                let mut got = vec![0.0; end - start];
                ctx.load(self.bufs[buf], start, &mut got)?;
                if got != self.model[buf][start..end] {
                    self.failures += 1;
                }
            }
        }
        ctx.write_one(self.out.expect("setup"), 0, self.failures as f64)
    }

    fn output(&self) -> BufferId {
        self.out.expect("setup ran")
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d1(1)
    }
}

fn tiny_device() -> DeviceConfig {
    // Small caches force constant evictions, exercising write-back paths.
    DeviceConfig::builder("tiny")
        .units(3)
        .max_threads_per_unit(8)
        .l1(CacheGeometry::new(128, 64, 2).expect("valid L1"))
        .l2(CacheGeometry::new(256, 64, 2).expect("valid L2"))
        .build()
        .expect("valid tiny device")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn caches_are_transparent_without_strikes(
        trace in proptest::collection::vec(access_strategy(), 1..60)) {
        let mut program = Replay {
            trace,
            model: Vec::new(),
            bufs: Vec::new(),
            out: None,
            failures: 0,
        };
        let engine = Engine::new(tiny_device());
        let outcome = engine.golden(&mut program).expect("golden replay");
        prop_assert_eq!(outcome.output[0], 0.0, "some load diverged from the model");
        prop_assert!(!outcome.strike_delivered);
    }

    #[test]
    fn golden_runs_are_bitwise_repeatable(
        trace in proptest::collection::vec(access_strategy(), 1..40)) {
        let mut program = Replay {
            trace,
            model: Vec::new(),
            bufs: Vec::new(),
            out: None,
            failures: 0,
        };
        let engine = Engine::new(tiny_device());
        let a = engine.golden(&mut program).expect("first run");
        let b = engine.golden(&mut program).expect("second run");
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.profile.total_ops, b.profile.total_ops);
        prop_assert_eq!(a.profile.loads, b.profile.loads);
    }
}
