//! Edge-case tests for the Prometheus text exposition: the rendered
//! snapshot is pushed through a small in-test parser of the format, so
//! escaping, HELP/TYPE ordering, non-finite floats and histogram
//! structure are checked against what a scraper would actually see —
//! not against substring luck.

use std::time::Duration;

use radcrit_obs::metrics::{help_for, METRIC_REFERENCE};
use radcrit_obs::MetricsRegistry;

/// One parsed line of the exposition text.
#[derive(Debug, Clone, PartialEq)]
enum Line {
    Help {
        name: String,
        text: String,
    },
    Type {
        name: String,
        kind: String,
    },
    Sample {
        name: String,
        labels: Vec<(String, String)>,
        value: String,
    },
}

/// Reverses the exposition escaping (`\\`, `\"`, `\n`).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Parses `k="v",k2="v2"` honouring escaped quotes inside values.
fn parse_labels(s: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find("=\"").expect("label must be k=\"v\"");
        let key = rest[..eq].trim_start_matches(',').to_owned();
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut consumed = rest.len();
        while let Some((i, c)) = chars.next() {
            if c == '\\' {
                let (_, escaped) = chars.next().expect("dangling backslash");
                value.push('\\');
                value.push(escaped);
            } else if c == '"' {
                consumed = eq + 2 + i + 1;
                break;
            } else {
                value.push(c);
            }
        }
        labels.push((key, unescape(&value)));
        rest = &rest[consumed..];
    }
    labels
}

/// Parses the full exposition text, panicking on anything malformed.
fn parse(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    for raw in text.lines() {
        if let Some(rest) = raw.strip_prefix("# HELP ") {
            let (name, text) = rest.split_once(' ').expect("HELP needs name + text");
            lines.push(Line::Help {
                name: name.to_owned(),
                text: text.to_owned(),
            });
        } else if let Some(rest) = raw.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE needs name + kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind {kind:?}"
            );
            lines.push(Line::Type {
                name: name.to_owned(),
                kind: kind.to_owned(),
            });
        } else {
            let (series, value) = raw.rsplit_once(' ').expect("sample must end in a value");
            let (name, labels) = match series.split_once('{') {
                Some((n, l)) => (
                    n.to_owned(),
                    parse_labels(l.strip_suffix('}').expect("unterminated label set")),
                ),
                None => (series.to_owned(), Vec::new()),
            };
            lines.push(Line::Sample {
                name,
                labels,
                value: value.to_owned(),
            });
        }
    }
    lines
}

fn samples<'l>(lines: &'l [Line], name: &str) -> Vec<&'l Line> {
    lines
        .iter()
        .filter(|l| matches!(l, Line::Sample { name: n, .. } if n == name))
        .collect()
}

#[test]
fn help_precedes_type_exactly_once_per_name() {
    let m = MetricsRegistry::new();
    // Two label sets of the same documented counter: the HELP/TYPE
    // header must appear once, before the first sample, not per series.
    m.counter_add("radcrit_campaign_outcomes_total", &[("outcome", "sdc")], 3);
    m.counter_add(
        "radcrit_campaign_outcomes_total",
        &[("outcome", "masked")],
        9,
    );
    m.gauge_set("radcrit_queue_depth", &[], 2.0);
    let lines = parse(&m.snapshot().to_prometheus());

    for name in ["radcrit_campaign_outcomes_total", "radcrit_queue_depth"] {
        let help_at = lines
            .iter()
            .position(|l| matches!(l, Line::Help { name: n, .. } if n == name))
            .unwrap_or_else(|| panic!("no HELP for documented metric {name}"));
        let helps = lines
            .iter()
            .filter(|l| matches!(l, Line::Help { name: n, .. } if n == name))
            .count();
        assert_eq!(helps, 1, "{name}: HELP must appear exactly once");
        assert!(
            matches!(&lines[help_at + 1], Line::Type { name: n, .. } if n == name),
            "{name}: TYPE must immediately follow HELP"
        );
        let first_sample = lines
            .iter()
            .position(|l| matches!(l, Line::Sample { name: n, .. } if n == name))
            .unwrap();
        assert!(
            help_at < first_sample,
            "{name}: header must precede samples"
        );
    }
    assert_eq!(samples(&lines, "radcrit_campaign_outcomes_total").len(), 2);
}

#[test]
fn help_text_matches_the_reference_with_exposition_escaping() {
    let m = MetricsRegistry::new();
    for entry in METRIC_REFERENCE {
        match entry.kind {
            "counter" => m.counter_add(entry.name, &[], 1),
            "gauge" => m.gauge_set(entry.name, &[], 1.0),
            _ => m.observe_duration(entry.name, &[], Duration::from_micros(50)),
        }
    }
    let lines = parse(&m.snapshot().to_prometheus());
    for entry in METRIC_REFERENCE {
        let text = lines
            .iter()
            .find_map(|l| match l {
                Line::Help { name, text } if name == entry.name => Some(text.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("{}: HELP line missing", entry.name));
        // The rendered help is one physical line whose unescaped form is
        // the reference text verbatim.
        assert!(!text.contains('\n'));
        assert_eq!(unescape(&text), help_for(entry.name).unwrap().help);
    }
}

#[test]
fn label_values_with_quotes_backslashes_and_newlines_round_trip() {
    let hostile = "path\\to\"dir\"\nnext line\ttab";
    let m = MetricsRegistry::new();
    m.counter_add(
        "radcrit_campaign_outcomes_total",
        &[("outcome", hostile)],
        7,
    );
    let text = m.snapshot().to_prometheus();

    // The hostile value must not break the line framing…
    let sample_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(
        sample_lines.len(),
        1,
        "one logical sample, one physical line"
    );

    // …and the parsed label must reproduce the original bytes.
    let lines = parse(&text);
    let Line::Sample { labels, value, .. } = &lines[lines.len() - 1] else {
        panic!("last line must be the sample");
    };
    assert_eq!(labels, &[("outcome".to_owned(), hostile.to_owned())]);
    assert_eq!(value, "7");
}

#[test]
fn non_finite_gauges_use_canonical_prometheus_spellings() {
    let m = MetricsRegistry::new();
    m.gauge_set("radcrit_queue_depth", &[("q", "nan")], f64::NAN);
    m.gauge_set("radcrit_queue_depth", &[("q", "pinf")], f64::INFINITY);
    m.gauge_set("radcrit_queue_depth", &[("q", "ninf")], f64::NEG_INFINITY);
    m.gauge_set("radcrit_queue_depth", &[("q", "finite")], 2.5);
    let lines = parse(&m.snapshot().to_prometheus());

    let value_of = |tag: &str| -> String {
        lines
            .iter()
            .find_map(|l| match l {
                Line::Sample { labels, value, .. } if labels.iter().any(|(_, v)| v == tag) => {
                    Some(value.clone())
                }
                _ => None,
            })
            .unwrap()
    };
    assert_eq!(value_of("nan"), "NaN");
    assert_eq!(value_of("pinf"), "+Inf");
    assert_eq!(value_of("ninf"), "-Inf");
    let finite: f64 = value_of("finite").parse().unwrap();
    assert_eq!(finite, 2.5);
}

#[test]
fn histograms_expose_cumulative_buckets_sum_count_and_companions() {
    let m = MetricsRegistry::new();
    for us in [3_u64, 40, 40, 900, 20_000] {
        m.observe_duration(
            "radcrit_injection_latency",
            &[("kernel", "dgemm")],
            Duration::from_micros(us),
        );
    }
    let lines = parse(&m.snapshot().to_prometheus());

    let buckets = samples(&lines, "radcrit_injection_latency_bucket");
    assert!(buckets.len() >= 2, "expected several le buckets");
    let mut last = 0_u64;
    let mut saw_inf = false;
    for b in &buckets {
        let Line::Sample { labels, value, .. } = b else {
            unreachable!()
        };
        // The le label is merged INTO the existing label set, keeping
        // the kernel label on every bucket line.
        assert!(labels.iter().any(|(k, v)| k == "kernel" && v == "dgemm"));
        let le = &labels.iter().find(|(k, _)| k == "le").unwrap().1;
        let cum: u64 = value.parse().unwrap();
        assert!(cum >= last, "bucket counts must be cumulative");
        last = cum;
        if le == "+Inf" {
            saw_inf = true;
            assert_eq!(cum, 5, "+Inf bucket must equal the observation count");
        }
    }
    assert!(saw_inf, "+Inf bucket is mandatory");

    let count = samples(&lines, "radcrit_injection_latency_count");
    let sum = samples(&lines, "radcrit_injection_latency_sum");
    assert_eq!(count.len(), 1);
    assert_eq!(sum.len(), 1);
    let Line::Sample { value, .. } = count[0] else {
        unreachable!()
    };
    assert_eq!(value, "5");
    let Line::Sample { value, .. } = sum[0] else {
        unreachable!()
    };
    let sum_us: u64 = value.parse().unwrap();
    assert_eq!(sum_us, 3 + 40 + 40 + 900 + 20_000);
    for companion in [
        "radcrit_injection_latency_underflow",
        "radcrit_injection_latency_overflow",
    ] {
        assert_eq!(samples(&lines, companion).len(), 1, "{companion} missing");
    }
}
