//! Drift test between `METRIC_REFERENCE` and `docs/METRICS.md`: every
//! registered help entry must have a documented row with the right
//! exposition type, and the doc must not list metrics that no longer
//! exist.

use std::path::PathBuf;

use radcrit_obs::metrics::METRIC_REFERENCE;

fn doc_text() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/METRICS.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("docs/METRICS.md missing at {}: {e}", path.display()))
}

#[test]
fn every_reference_entry_is_documented_with_its_type() {
    let doc = doc_text();
    let mut missing = Vec::new();
    for entry in METRIC_REFERENCE {
        // A table row pins name and type together on one line.
        let row = format!("`{}` | {} |", entry.name, entry.kind);
        if !doc.contains(&row) {
            missing.push(format!("{} ({})", entry.name, entry.kind));
        }
    }
    assert!(
        missing.is_empty(),
        "docs/METRICS.md is out of date; add rows `| name | type | meaning |` for: {missing:?}"
    );
}

#[test]
fn the_doc_does_not_list_retired_metrics() {
    // Every backticked radcrit_* token in the doc must still exist in
    // the reference table (no stale rows after a rename).
    let doc = doc_text();
    let known: Vec<&str> = METRIC_REFERENCE.iter().map(|e| e.name).collect();
    let mut stale = Vec::new();
    for token in doc.split('`').skip(1).step_by(2) {
        // Only metric-shaped tokens count: the prose also backticks the
        // bare `radcrit_` prefix and module paths like
        // `radcrit_obs::profile`.
        let looks_like_metric = token.len() > "radcrit_".len()
            && token.starts_with("radcrit_")
            && token
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if looks_like_metric && !known.contains(&token) {
            stale.push(token.to_owned());
        }
    }
    assert!(
        stale.is_empty(),
        "docs/METRICS.md names metrics absent from METRIC_REFERENCE: {stale:?}"
    );
}

#[test]
fn reference_entries_are_unique_and_sorted() {
    // The table doubles as an index; keep it deterministic.
    let names: Vec<&str> = METRIC_REFERENCE.iter().map(|e| e.name).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        names, sorted,
        "METRIC_REFERENCE must be sorted and free of duplicates"
    );
}
