//! Power-of-two bucketed histograms.
//!
//! The generalization of the campaign runner's original latency
//! histogram, with the edge cases made explicit: sub-microsecond
//! observations are clamped into the first bucket and counted as
//! [`Log2Histogram::underflow`], and observations at or past the last
//! bucket edge are clamped into the final bucket and counted as
//! [`Log2Histogram::overflow`] — nothing saturates silently.

use std::time::Duration;

/// Power-of-two bucketed histogram of microsecond durations.
///
/// Bucket `b` counts observations in `[2^b, 2^(b+1))` microseconds; the
/// covered range `[1 µs, ~17.9 min)` spans everything a campaign can
/// produce (watchdog deadlines cap the upper end). Observations outside
/// the range are clamped into the edge buckets and additionally counted
/// by [`Log2Histogram::underflow`] / [`Log2Histogram::overflow`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use radcrit_obs::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(Duration::from_nanos(10)); // clamped: underflow
/// h.record(Duration::from_micros(3));
/// h.record(Duration::from_secs(3600)); // clamped: overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; Self::BUCKETS],
    total: u64,
    underflow: u64,
    overflow: u64,
    sum_micros: u64,
}

impl Log2Histogram {
    /// Number of buckets.
    pub const BUCKETS: usize = 30;

    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: [0; Self::BUCKETS],
            total: 0,
            underflow: 0,
            overflow: 0,
            sum_micros: 0,
        }
    }

    /// Records one duration observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_micros(latency.as_micros());
    }

    /// Records one observation expressed in microseconds.
    pub fn record_micros(&mut self, micros: u128) {
        if micros < 1 {
            // Clamp explicitly into the first bucket; the underflow
            // count keeps the clamping visible.
            self.underflow += 1;
            self.counts[0] += 1;
        } else {
            let bucket = (u128::BITS - 1 - micros.leading_zeros()) as usize; // floor(log2)
            if bucket >= Self::BUCKETS {
                self.overflow += 1;
                self.counts[Self::BUCKETS - 1] += 1;
            } else {
                self.counts[bucket] += 1;
            }
        }
        self.total += 1;
        self.sum_micros = self
            .sum_micros
            .saturating_add(micros.min(u64::MAX as u128) as u64);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    /// Number of recorded observations (clamped ones included).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below 1 µs, clamped into the first bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or beyond the last bucket edge (~17.9 min),
    /// clamped into the final bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Sum of all observations in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`), as the
    /// upper edge of the bucket the quantile falls in. `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Duration::from_micros(1u64 << (b + 1)));
            }
        }
        None
    }

    /// The non-empty buckets as `(bucket lower edge, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(Duration, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Duration::from_micros(1u64 << b), n))
            .collect()
    }

    /// Cumulative non-empty buckets as `(upper edge in µs, cumulative
    /// count)` pairs — the shape Prometheus histogram exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((1u64 << (b + 1), cum));
            }
        }
        out
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_powers_of_two() {
        let mut h = Log2Histogram::new();
        h.record(Duration::from_micros(3)); // bucket [2, 4)
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(5)); // bucket [4096, 8192)
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (Duration::from_micros(2), 2));
        assert_eq!(buckets[1], (Duration::from_micros(4096), 1));
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn sub_microsecond_is_clamped_and_counted() {
        let mut h = Log2Histogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.count(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.nonzero_buckets()[0].0, Duration::from_micros(1));
    }

    #[test]
    fn past_last_bucket_is_clamped_and_counted() {
        let mut h = Log2Histogram::new();
        // 2^30 µs ≈ 17.9 min is the first duration past the range.
        h.record_micros(1 << 30);
        h.record(Duration::from_secs(86_400));
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 2);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(Duration::from_micros(1 << 29), 2)]);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..9 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        h.record(Duration::from_millis(1)); // bucket [512, 1024)
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(16)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1024)));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Log2Histogram::new();
        a.record(Duration::from_micros(3));
        a.record(Duration::from_nanos(1));
        let mut b = Log2Histogram::new();
        b.record_micros(1 << 31);
        b.record(Duration::from_micros(100));
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert!(a.sum_micros() > (1 << 31));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = Log2Histogram::new();
        for us in [1u128, 3, 3, 100, 5000] {
            h.record_micros(us);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 5);
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
