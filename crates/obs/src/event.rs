//! Structured events and spans.
//!
//! An [`Event`] is one JSONL line: a `kind`, an optional injection
//! index, and ordered key/value fields. Events carry only *logical*
//! data — indices, sites, bits, coordinates, classes. Wall-clock
//! quantities (latencies, timestamps) belong in the metrics registry,
//! never here; that is what makes a fixed-seed campaign's event stream
//! byte-identical across runs and worker counts.
//!
//! An [`EventBuffer`] is the per-unit-of-work sink. Disabled buffers
//! make every emission a no-op — a single `Option` check, no
//! allocation — so instrumented code paths cost nothing when
//! observability is off.

use crate::json::{escape, fmt_f64, Json};

/// A typed field value on an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (shortest round-trip formatting; `inf`/`NaN` verbatim).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array of unsigned integers (tile lists, coordinates).
    Arr(Vec<u64>),
}

impl FieldValue {
    fn encode(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => fmt_f64(*v),
            FieldValue::Str(s) => format!("\"{}\"", escape(s)),
            FieldValue::Bool(b) => b.to_string(),
            FieldValue::Arr(items) => {
                let inner = items
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!("[{inner}]")
            }
        }
    }
}

/// One structured event: a kind, an optional injection index, and
/// ordered key/value fields.
///
/// # Examples
///
/// ```
/// use radcrit_obs::{Event, EventBuffer};
///
/// let mut buf = EventBuffer::for_injection(3);
/// buf.emit("strike").str("site", "fpu").u64("bit", 17);
/// let events: Vec<Event> = buf.take();
/// assert_eq!(events[0].line(), r#"{"e":"strike","i":3,"site":"fpu","bit":17}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind, e.g. `strike`, `diff`, `span_begin`.
    pub kind: String,
    /// Injection index the event belongs to; `None` for campaign-level
    /// events (headers, run lifecycle).
    pub index: Option<u64>,
    /// Ordered key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Encodes the event as one JSON line (no trailing newline).
    pub fn line(&self) -> String {
        let mut out = format!("{{\"e\":\"{}\"", escape(&self.kind));
        if let Some(i) = self.index {
            out.push_str(&format!(",\"i\":{i}"));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", escape(k), v.encode()));
        }
        out.push('}');
        out
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parses one JSONL line back into an [`Event`].
///
/// Integers that fit a `u64` come back as [`FieldValue::U64`], other
/// integers as [`FieldValue::I64`], and remaining numbers as
/// [`FieldValue::F64`] — so a written event round-trips exactly.
///
/// # Errors
///
/// A description of the first syntax or schema problem.
pub fn parse_event_line(line: &str) -> Result<Event, String> {
    let v = crate::json::parse_line(line)?;
    let obj = crate::json::as_obj(&v)?;
    let kind = crate::json::get_str(obj, "e")?.to_owned();
    let mut index = None;
    let mut fields = Vec::new();
    for (k, v) in obj {
        match k.as_str() {
            "e" => {}
            "i" => match v {
                Json::Num(n) => {
                    index = Some(n.parse().map_err(|_| "bad \"i\" field".to_string())?);
                }
                _ => return Err("field \"i\" is not a number".into()),
            },
            _ => fields.push((k.clone(), parse_field(v)?)),
        }
    }
    Ok(Event {
        kind,
        index,
        fields,
    })
}

fn parse_field(v: &Json) -> Result<FieldValue, String> {
    match v {
        Json::Bool(b) => Ok(FieldValue::Bool(*b)),
        Json::Str(s) => Ok(FieldValue::Str(s.clone())),
        Json::Num(n) => {
            if let Ok(u) = n.parse::<u64>() {
                Ok(FieldValue::U64(u))
            } else if let Ok(i) = n.parse::<i64>() {
                Ok(FieldValue::I64(i))
            } else {
                n.parse::<f64>()
                    .map(FieldValue::F64)
                    .map_err(|_| format!("unparseable number {n:?}"))
            }
        }
        Json::Arr(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Num(n) => out.push(
                        n.parse::<u64>()
                            .map_err(|_| "array item is not a u64".to_string())?,
                    ),
                    _ => return Err("array item is not a number".into()),
                }
            }
            Ok(FieldValue::Arr(out))
        }
        Json::Null => Err("null field values are not part of the event schema".into()),
        Json::Obj(_) => Err("nested objects are not part of the event schema".into()),
    }
}

/// A sink for events produced by one unit of work (one injection run,
/// or the campaign's top level).
///
/// A disabled buffer ignores every emission at the cost of one `Option`
/// check; instrumentation can therefore stay unconditionally in place.
#[derive(Debug, Default)]
pub struct EventBuffer {
    // `None` = disabled; `Some` = collecting.
    events: Option<Vec<Event>>,
    // Default injection index stamped onto emitted events.
    index: Option<u64>,
}

impl EventBuffer {
    /// A disabled buffer: every emission is a no-op.
    pub fn disabled() -> Self {
        EventBuffer {
            events: None,
            index: None,
        }
    }

    /// An enabled buffer for campaign-level events (no injection index).
    pub fn enabled() -> Self {
        EventBuffer {
            events: Some(Vec::new()),
            index: None,
        }
    }

    /// An enabled buffer whose events are stamped with injection
    /// index `i`.
    pub fn for_injection(i: u64) -> Self {
        EventBuffer {
            events: Some(Vec::new()),
            index: Some(i),
        }
    }

    /// Whether emissions are being collected.
    pub fn is_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Starts an event of the given kind; finish it by chaining field
    /// setters on the returned builder (the event is recorded when the
    /// builder drops).
    pub fn emit(&mut self, kind: &str) -> EventBuilder<'_> {
        let event = self.events.as_mut().map(|sink| {
            (
                sink,
                Event {
                    kind: kind.to_owned(),
                    index: self.index,
                    fields: Vec::new(),
                },
            )
        });
        EventBuilder { inner: event }
    }

    /// Records an already-built event, e.g. a
    /// [`crate::ProvenanceRecord`] encoded with `to_event()`. No-op when
    /// disabled.
    pub fn push(&mut self, event: Event) {
        if let Some(sink) = self.events.as_mut() {
            sink.push(event);
        }
    }

    /// Drains the collected events (empty for disabled buffers).
    pub fn take(&mut self) -> Vec<Event> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }
}

/// Chained field setters for an in-flight [`Event`]; records the event
/// into its buffer on drop. Obtained from [`EventBuffer::emit`].
#[derive(Debug)]
pub struct EventBuilder<'a> {
    inner: Option<(&'a mut Vec<Event>, Event)>,
}

impl EventBuilder<'_> {
    fn push(mut self, key: &str, value: FieldValue) -> Self {
        if let Some((_, event)) = self.inner.as_mut() {
            event.fields.push((key.to_owned(), value));
        }
        self
    }

    /// Attaches an unsigned integer field.
    pub fn u64(self, key: &str, v: u64) -> Self {
        self.push(key, FieldValue::U64(v))
    }

    /// Attaches an optional unsigned integer field; `None` is omitted.
    pub fn opt_u64(self, key: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.u64(key, v),
            None => self,
        }
    }

    /// Attaches a signed integer field.
    pub fn i64(self, key: &str, v: i64) -> Self {
        self.push(key, FieldValue::I64(v))
    }

    /// Attaches a float field.
    pub fn f64(self, key: &str, v: f64) -> Self {
        self.push(key, FieldValue::F64(v))
    }

    /// Attaches a string field.
    pub fn str(self, key: &str, v: &str) -> Self {
        self.push(key, FieldValue::Str(v.to_owned()))
    }

    /// Attaches a boolean field.
    pub fn bool(self, key: &str, v: bool) -> Self {
        self.push(key, FieldValue::Bool(v))
    }

    /// Attaches an array-of-integers field.
    pub fn arr(self, key: &str, v: Vec<u64>) -> Self {
        self.push(key, FieldValue::Arr(v))
    }
}

impl Drop for EventBuilder<'_> {
    fn drop(&mut self) {
        if let Some((sink, event)) = self.inner.take() {
            sink.push(event);
        }
    }
}

/// A named span over a stretch of work, bracketed by `span_begin` /
/// `span_end` events.
///
/// Spans do not borrow the buffer between the bracketing events, so the
/// enclosed code is free to emit its own events:
///
/// ```
/// use radcrit_obs::{EventBuffer, Span};
///
/// let mut buf = EventBuffer::for_injection(0);
/// let span = Span::enter(&mut buf, "injection");
/// buf.emit("strike").str("site", "l2");
/// span.exit(&mut buf);
/// let kinds: Vec<String> = buf.take().into_iter().map(|e| e.kind).collect();
/// assert_eq!(kinds, ["span_begin", "strike", "span_end"]);
/// ```
#[derive(Debug)]
#[must_use = "a span must be closed with exit() to emit its span_end event"]
pub struct Span {
    name: String,
}

impl Span {
    /// Emits `span_begin` and returns the span handle.
    pub fn enter(buf: &mut EventBuffer, name: &str) -> Self {
        buf.emit("span_begin").str("span", name);
        Span {
            name: name.to_owned(),
        }
    }

    /// Emits the matching `span_end`.
    pub fn exit(self, buf: &mut EventBuffer) {
        buf.emit("span_end").str("span", &self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_collects_nothing() {
        let mut buf = EventBuffer::disabled();
        assert!(!buf.is_enabled());
        buf.emit("strike").u64("bit", 3).str("site", "fpu");
        let span = Span::enter(&mut buf, "x");
        span.exit(&mut buf);
        assert!(buf.take().is_empty());
    }

    #[test]
    fn events_encode_in_field_order() {
        let mut buf = EventBuffer::for_injection(7);
        buf.emit("diff")
            .u64("mismatches", 2)
            .str("class", "line")
            .f64("mre", 0.5)
            .bool("delivered", true)
            .arr("tiles", vec![1, 4])
            .i64("delta", -3);
        let events = buf.take();
        assert_eq!(
            events[0].line(),
            r#"{"e":"diff","i":7,"mismatches":2,"class":"line","mre":0.5,"delivered":true,"tiles":[1,4],"delta":-3}"#
        );
    }

    #[test]
    fn events_round_trip_through_parse() {
        let mut buf = EventBuffer::for_injection(12);
        buf.emit("strike")
            .str("site", "register_file")
            .u64("bit", 31)
            .f64("inf_mre", f64::INFINITY)
            .i64("neg", -9)
            .bool("ok", false)
            .arr("touched", vec![0, 5, 6]);
        let original = buf.take().remove(0);
        let parsed = parse_event_line(&original.line()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn campaign_level_events_have_no_index() {
        let mut buf = EventBuffer::enabled();
        buf.emit("run_begin").u64("injections", 100);
        let events = buf.take();
        assert_eq!(events[0].index, None);
        assert_eq!(events[0].line(), r#"{"e":"run_begin","injections":100}"#);
    }

    #[test]
    fn opt_u64_omits_none() {
        let mut buf = EventBuffer::enabled();
        buf.emit("strike")
            .opt_u64("victim", None)
            .opt_u64("unit", Some(2));
        assert_eq!(buf.take()[0].line(), r#"{"e":"strike","unit":2}"#);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_event_line("not json").is_err());
        assert!(parse_event_line(r#"{"no_kind":1}"#).is_err());
        assert!(parse_event_line(r#"{"e":"x","i":"str"}"#).is_err());
        assert!(parse_event_line(r#"{"e":"x","nested":{"a":1}}"#).is_err());
    }
}
