//! Hierarchical scoped-phase profiler with per-thread lock-free
//! accumulation and merged profile trees.
//!
//! The profiler answers *where the injection-microseconds go*: a fixed
//! registry of [`PhaseId`]s (golden execution, bucket restore, warm
//! advance, fork, tile execution, cache access, bulk memory load/store,
//! corruption scan, output compare, snapshot capture, checkpoint) is
//! instrumented through the engine and campaign hot paths with
//! [`phase`] scopes. Like the span/event API, it is **zero-cost when
//! disabled**: [`phase`] reads one thread-local flag and returns `None`
//! without touching a clock, and profiling never writes to the
//! deterministic event stream — a fixed-seed campaign emits a
//! byte-identical stream with profiling on or off. Timings are
//! wall-clock and live beside the metrics registry as operational
//! output, never as science.
//!
//! Aggregation is per-worker: each worker thread enables its own
//! thread-local accumulator ([`enable_thread`]), records scopes without
//! any locking or atomics, and drains a [`ProfileTree`]
//! ([`drain_thread`]) that the campaign merges into a shared
//! [`ProfileCollector`] once, at thread exit. The merged tree exports
//! as one-line JSON (`profile_out`), Brendan-Gregg collapsed-stack text
//! for flamegraphs ([`ProfileTree::to_collapsed`]), and a hot-phase
//! ranking ([`ProfileTree::hot_phases`]).
//!
//! ## Scope discipline
//!
//! Scopes nest strictly (guards are dropped in reverse creation order),
//! so each node's *self time* is its wall total minus the wall total of
//! its children — the invariant `self_ns + Σ child.total_ns ==
//! total_ns` holds per node, and children's time is never double
//! counted into siblings.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{self, Json};

/// Number of phases in the fixed registry.
pub const PHASE_COUNT: usize = 12;

/// The fixed registry of profiled phases.
///
/// The set is closed on purpose: a fixed, small phase vocabulary keeps
/// the per-node child table a flat array (no hashing on the hot path)
/// and makes profiles from different workers, jobs and daemons
/// mergeable by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum PhaseId {
    /// Golden (fault-free) reference execution.
    Golden = 0,
    /// Warm-bucket state restore from a snapshot (`Engine::warm_restore`).
    BucketRestore = 1,
    /// Golden tile replay advancing a warm state to the bucket's resume
    /// point (`Engine::warm_advance`).
    WarmAdvance = 2,
    /// A forked per-strike execution off a warm bucket state
    /// (`Engine::run_forked`), including its state copy.
    Fork = 3,
    /// One kernel tile body (`Program::execute_tile`).
    TileExecute = 4,
    /// Cache-hierarchy access (way scan, fill, writeback collection).
    CacheAccess = 5,
    /// Bulk row load from simulated memory into tile registers.
    MemLoad = 6,
    /// Bulk row store from tile registers into simulated memory.
    MemStore = 7,
    /// Scan for pending cache-line corruption overlapping an access.
    CorruptionScan = 8,
    /// Faulty-vs-golden output comparison (dense or sparse).
    Compare = 9,
    /// Golden-prefix snapshot capture during execution.
    SnapshotCapture = 10,
    /// Campaign checkpoint append.
    Checkpoint = 11,
}

impl PhaseId {
    /// Every phase, in registry order.
    pub const ALL: [PhaseId; PHASE_COUNT] = [
        PhaseId::Golden,
        PhaseId::BucketRestore,
        PhaseId::WarmAdvance,
        PhaseId::Fork,
        PhaseId::TileExecute,
        PhaseId::CacheAccess,
        PhaseId::MemLoad,
        PhaseId::MemStore,
        PhaseId::CorruptionScan,
        PhaseId::Compare,
        PhaseId::SnapshotCapture,
        PhaseId::Checkpoint,
    ];

    /// The phase's stable export name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::Golden => "golden",
            PhaseId::BucketRestore => "bucket-restore",
            PhaseId::WarmAdvance => "warm-advance",
            PhaseId::Fork => "fork",
            PhaseId::TileExecute => "tile-execute",
            PhaseId::CacheAccess => "cache-access",
            PhaseId::MemLoad => "mem-load",
            PhaseId::MemStore => "mem-store",
            PhaseId::CorruptionScan => "corruption-scan",
            PhaseId::Compare => "compare",
            PhaseId::SnapshotCapture => "snapshot-capture",
            PhaseId::Checkpoint => "checkpoint",
        }
    }

    /// Parses an export name back into a phase (`None` for foreign
    /// names — a profile written by a newer build stays loadable).
    pub fn from_name(name: &str) -> Option<PhaseId> {
        PhaseId::ALL.iter().copied().find(|p| p.name() == name)
    }
}

const NO_NODE: u32 = u32::MAX;

/// One node of the in-construction per-thread tree. The child table is
/// a flat per-phase array so the enter path is two indexed loads.
#[derive(Debug, Clone)]
struct RawNode {
    phase: usize,
    parent: u32,
    count: u64,
    total_ns: u64,
    child_ns: u64,
    min_ns: u64,
    max_ns: u64,
    children: [u32; PHASE_COUNT],
}

impl RawNode {
    fn new(phase: usize, parent: u32) -> Self {
        RawNode {
            phase,
            parent,
            count: 0,
            total_ns: 0,
            child_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            children: [NO_NODE; PHASE_COUNT],
        }
    }
}

/// The per-thread accumulator. Node 0 is a virtual root whose children
/// are the thread's top-level phases.
#[derive(Debug)]
struct ThreadProfiler {
    nodes: Vec<RawNode>,
    current: u32,
}

impl ThreadProfiler {
    fn new() -> Self {
        ThreadProfiler {
            nodes: vec![RawNode::new(usize::MAX, NO_NODE)],
            current: 0,
        }
    }

    fn enter(&mut self, phase: PhaseId) -> u32 {
        let cur = self.current as usize;
        let slot = self.nodes[cur].children[phase as usize];
        let node = if slot == NO_NODE {
            let idx = self.nodes.len() as u32;
            self.nodes.push(RawNode::new(phase as usize, self.current));
            self.nodes[cur].children[phase as usize] = idx;
            idx
        } else {
            slot
        };
        self.current = node;
        node
    }

    fn exit(&mut self, node: u32, elapsed_ns: u64) {
        let n = &mut self.nodes[node as usize];
        n.count += 1;
        n.total_ns += elapsed_ns;
        n.min_ns = n.min_ns.min(elapsed_ns);
        n.max_ns = n.max_ns.max(elapsed_ns);
        let parent = n.parent;
        self.current = parent;
        if parent != NO_NODE && parent != 0 {
            self.nodes[parent as usize].child_ns += elapsed_ns;
        }
    }

    fn drain(&mut self) -> ProfileTree {
        let roots = self.export_children(0);
        *self = ThreadProfiler::new();
        ProfileTree { threads: 1, roots }
    }

    fn export_children(&self, node: usize) -> Vec<ProfileNode> {
        let mut out = Vec::new();
        for phase in 0..PHASE_COUNT {
            let slot = self.nodes[node].children[phase];
            if slot == NO_NODE {
                continue;
            }
            let raw = &self.nodes[slot as usize];
            if raw.count == 0 && raw.children.iter().all(|&c| c == NO_NODE) {
                continue;
            }
            out.push(ProfileNode {
                phase: PhaseId::ALL[raw.phase].name().to_owned(),
                count: raw.count,
                total_ns: raw.total_ns,
                self_ns: raw.total_ns.saturating_sub(raw.child_ns),
                min_ns: if raw.min_ns == u64::MAX {
                    0
                } else {
                    raw.min_ns
                },
                max_ns: raw.max_ns,
                children: self.export_children(slot as usize),
            });
        }
        out
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static PROFILER: RefCell<ThreadProfiler> = RefCell::new(ThreadProfiler::new());
    static TILE_SAMPLES: Cell<u64> = const { Cell::new(0) };
}

/// Whether profiling is enabled on the calling thread.
#[inline]
pub fn profiling_enabled() -> bool {
    ACTIVE.with(Cell::get)
}

/// Default tile-sampling stride: one tile in this many has its
/// per-element memory sub-phases (mem-load, mem-store, cache-access,
/// corruption-scan) timed. Those phases open a scope per load/store
/// *call* — millions per campaign — so timing every call costs more
/// than the work being measured (~3x slowdown on DGEMM-256). Sampling
/// whole tiles keeps the nesting of a profiled tile exact and the
/// ratios *between* the memory sub-phases unbiased, while untimed
/// tiles' memory time simply stays in `tile-execute` self time. Counts
/// and durations of sampled phases are per-sample, not scaled up.
///
/// Override with [`set_tile_sample_stride`] or the
/// `RADCRIT_PROFILE_STRIDE` environment variable (1 = exhaustive, for
/// offline deep captures like the committed `PROFILE_7.json`).
pub const TILE_SAMPLE_STRIDE: u64 = 256;

/// Effective stride, resolved once: setter wins, then the
/// `RADCRIT_PROFILE_STRIDE` environment variable, then the default.
static STRIDE: AtomicU64 = AtomicU64::new(0);

/// Overrides the tile-sampling stride process-wide (clamped to ≥ 1).
/// Intended for deep offline captures where overhead does not matter —
/// e.g. `diff-bench`'s untimed profiled rep.
pub fn set_tile_sample_stride(stride: u64) {
    STRIDE.store(stride.max(1), Ordering::Relaxed);
}

fn tile_sample_stride() -> u64 {
    let s = STRIDE.load(Ordering::Relaxed);
    if s != 0 {
        return s;
    }
    let v = std::env::var("RADCRIT_PROFILE_STRIDE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(TILE_SAMPLE_STRIDE);
    STRIDE.store(v, Ordering::Relaxed);
    v
}

/// Returns whether the next tile execution should profile its
/// per-element memory sub-phases: every stride-th tile on a profiling
/// thread, starting with the first (so even tiny runs sample at least
/// one tile per thread). Always false when the thread is not
/// profiling, without consuming a sample slot.
#[inline]
pub fn tile_sample() -> bool {
    if !profiling_enabled() {
        return false;
    }
    TILE_SAMPLES.with(|c| {
        let n = c.get();
        c.set(n + 1);
        n % tile_sample_stride() == 0
    })
}

/// Enables profiling on the calling thread with a fresh accumulator.
pub fn enable_thread() {
    PROFILER.with(|p| *p.borrow_mut() = ThreadProfiler::new());
    TILE_SAMPLES.with(|c| c.set(0));
    ACTIVE.with(|a| a.set(true));
}

/// Disables profiling on the calling thread and drains its accumulated
/// tree (empty when profiling was never enabled).
pub fn drain_thread() -> ProfileTree {
    ACTIVE.with(|a| a.set(false));
    PROFILER.with(|p| p.borrow_mut().drain())
}

/// Opens a phase scope when the calling thread is profiling; the
/// returned guard closes the scope on drop. The disabled path is one
/// thread-local flag read — no clock, no allocation.
#[inline]
pub fn phase(id: PhaseId) -> Option<PhaseScope> {
    if !profiling_enabled() {
        return None;
    }
    Some(open_scope(id))
}

/// [`phase`] with the enablement check hoisted out: hot loops that
/// sample [`profiling_enabled`] once per unit of work pass the cached
/// flag here, making the disabled path a plain register test.
#[inline]
pub fn phase_if(enabled: bool, id: PhaseId) -> Option<PhaseScope> {
    if !enabled {
        return None;
    }
    Some(open_scope(id))
}

fn open_scope(id: PhaseId) -> PhaseScope {
    let node = PROFILER.with(|p| p.borrow_mut().enter(id));
    PhaseScope {
        node,
        start: Instant::now(),
    }
}

/// An open phase scope; dropping it records the elapsed wall time into
/// the thread's accumulator and pops back to the parent phase.
#[derive(Debug)]
pub struct PhaseScope {
    node: u32,
    start: Instant,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        PROFILER.with(|p| p.borrow_mut().exit(self.node, elapsed));
    }
}

/// One aggregated node of a merged profile tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileNode {
    /// Phase export name (see [`PhaseId::name`]).
    pub phase: String,
    /// Times this phase was entered at this stack position.
    pub count: u64,
    /// Total wall time inside the scope, nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to any child scope, nanoseconds.
    pub self_ns: u64,
    /// Shortest single scope, nanoseconds.
    pub min_ns: u64,
    /// Longest single scope, nanoseconds.
    pub max_ns: u64,
    /// Child phases, in registry order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn merge_from(&mut self, other: &ProfileNode) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.min_ns = if self.count == other.count {
            other.min_ns
        } else if other.count == 0 {
            self.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        merge_node_lists(&mut self.children, &other.children);
    }

    fn to_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"phase\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\
             \"min_ns\":{},\"max_ns\":{},\"children\":[",
            json::escape(&self.phase),
            self.count,
            self.total_ns,
            self.self_ns,
            self.min_ns,
            self.max_ns,
        ));
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json(out);
        }
        out.push_str("]}");
    }

    fn from_json(v: &Json) -> Result<ProfileNode, String> {
        let obj = json::as_obj(v)?;
        let children = match json::get(obj, "children")? {
            Json::Arr(items) => items
                .iter()
                .map(ProfileNode::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("field \"children\" is not an array".into()),
        };
        Ok(ProfileNode {
            phase: json::get_str(obj, "phase")?.to_owned(),
            count: json::get_usize(obj, "count")? as u64,
            total_ns: json::get_usize(obj, "total_ns")? as u64,
            self_ns: json::get_usize(obj, "self_ns")? as u64,
            min_ns: json::get_usize(obj, "min_ns")? as u64,
            max_ns: json::get_usize(obj, "max_ns")? as u64,
            children,
        })
    }
}

/// Merges `other` node list into `into`, matching by phase name and
/// keeping registry order (foreign names sort last, alphabetically).
fn merge_node_lists(into: &mut Vec<ProfileNode>, other: &[ProfileNode]) {
    for node in other {
        match into.iter_mut().find(|n| n.phase == node.phase) {
            Some(existing) => existing.merge_from(node),
            None => into.push(node.clone()),
        }
    }
    into.sort_by_key(|n| {
        PhaseId::from_name(&n.phase).map_or_else(
            || (PHASE_COUNT, n.phase.clone()),
            |p| (p as usize, String::new()),
        )
    });
}

/// A merged, exportable profile tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileTree {
    /// Number of thread accumulators merged into this tree.
    pub threads: u64,
    /// Top-level phases (those entered with no enclosing scope).
    pub roots: Vec<ProfileNode>,
}

impl ProfileTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the tree holds no recorded phases.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Folds another tree into this one (phases merge by name; counts
    /// and times add, min/max combine).
    pub fn merge(&mut self, other: &ProfileTree) {
        self.threads += other.threads;
        merge_node_lists(&mut self.roots, &other.roots);
    }

    /// Total wall time across all root phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Renders the tree as one line of JSON (plus trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"radcrit_profile\":1,\"threads\":{},\"roots\":[",
            self.threads
        );
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.to_json(&mut out);
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a tree back from its [`ProfileTree::to_json`] rendering.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn from_json(text: &str) -> Result<ProfileTree, String> {
        let v = json::parse_line(text.trim())?;
        let obj = json::as_obj(&v)?;
        if json::get_usize(obj, "radcrit_profile")? != 1 {
            return Err("not a radcrit profile (version != 1)".into());
        }
        let roots = match json::get(obj, "roots")? {
            Json::Arr(items) => items
                .iter()
                .map(ProfileNode::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("field \"roots\" is not an array".into()),
        };
        Ok(ProfileTree {
            threads: json::get_usize(obj, "threads")? as u64,
            roots,
        })
    }

    /// Renders Brendan-Gregg collapsed-stack text: one
    /// `phase;phase;phase value` line per tree node, value = self time
    /// in microseconds. Feed directly to `flamegraph.pl` or speedscope.
    pub fn to_collapsed(&self) -> String {
        fn walk(node: &ProfileNode, prefix: &str, out: &mut String) {
            let stack = if prefix.is_empty() {
                node.phase.clone()
            } else {
                format!("{prefix};{}", node.phase)
            };
            out.push_str(&format!("{stack} {}\n", node.self_ns / 1_000));
            for c in &node.children {
                walk(c, &stack, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, "", &mut out);
        }
        out
    }

    /// The hottest phases by aggregate self time across every stack
    /// position: `(phase, self_ns, count)` sorted hottest-first,
    /// truncated to `n`.
    pub fn hot_phases(&self, n: usize) -> Vec<(String, u64, u64)> {
        fn fold(node: &ProfileNode, acc: &mut Vec<(String, u64, u64)>) {
            match acc.iter_mut().find(|(p, _, _)| *p == node.phase) {
                Some(slot) => {
                    slot.1 += node.self_ns;
                    slot.2 += node.count;
                }
                None => acc.push((node.phase.clone(), node.self_ns, node.count)),
            }
            for c in &node.children {
                fold(c, acc);
            }
        }
        let mut acc = Vec::new();
        for r in &self.roots {
            fold(r, &mut acc);
        }
        acc.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        acc.truncate(n);
        acc
    }
}

/// The shared merge point: each thread drains into the collector once,
/// at thread exit, so the mutex is never contended on a hot path.
#[derive(Debug, Default)]
pub struct ProfileCollector {
    merged: Mutex<ProfileTree>,
}

impl ProfileCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one drained per-thread tree into the merged profile.
    pub fn merge(&self, tree: &ProfileTree) {
        self.merged.lock().expect("profile lock").merge(tree);
    }

    /// A copy of the merged tree so far.
    pub fn snapshot(&self) -> ProfileTree {
        self.merged.lock().expect("profile lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_scopes_are_none_and_record_nothing() {
        assert!(!profiling_enabled());
        assert!(phase(PhaseId::Golden).is_none());
        assert!(phase_if(false, PhaseId::Fork).is_none());
        let tree = drain_thread();
        assert!(tree.is_empty());
    }

    #[test]
    fn nested_scopes_build_a_tree_with_self_time() {
        enable_thread();
        {
            let _g = phase(PhaseId::Golden).unwrap();
            spin(Duration::from_micros(300));
            for _ in 0..3 {
                let _t = phase(PhaseId::TileExecute).unwrap();
                spin(Duration::from_micros(100));
                let _l = phase(PhaseId::MemLoad).unwrap();
                spin(Duration::from_micros(50));
            }
        }
        let tree = drain_thread();
        assert_eq!(tree.threads, 1);
        assert_eq!(tree.roots.len(), 1);
        let golden = &tree.roots[0];
        assert_eq!(golden.phase, "golden");
        assert_eq!(golden.count, 1);
        let tiles = &golden.children[0];
        assert_eq!(tiles.phase, "tile-execute");
        assert_eq!(tiles.count, 3);
        assert_eq!(tiles.children[0].phase, "mem-load");
        assert_eq!(tiles.children[0].count, 3);
        // Self-time invariant at every level.
        let child_total: u64 = golden.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(golden.self_ns, golden.total_ns - child_total);
        assert!(golden.total_ns >= child_total);
        let tile_child: u64 = tiles.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(tiles.self_ns, tiles.total_ns - tile_child);
        assert!(tiles.min_ns <= tiles.max_ns);
        assert!(tiles.min_ns > 0);
    }

    #[test]
    fn drain_resets_the_accumulator() {
        enable_thread();
        {
            let _g = phase(PhaseId::Compare).unwrap();
        }
        assert!(!drain_thread().is_empty());
        enable_thread();
        assert!(drain_thread().is_empty());
    }

    #[test]
    fn merge_adds_counts_and_combines_extrema() {
        let mk = |count, total, min, max| ProfileTree {
            threads: 1,
            roots: vec![ProfileNode {
                phase: "fork".into(),
                count,
                total_ns: total,
                self_ns: total,
                min_ns: min,
                max_ns: max,
                children: vec![],
            }],
        };
        let mut a = mk(2, 200, 50, 150);
        a.merge(&mk(3, 300, 20, 280));
        assert_eq!(a.threads, 2);
        assert_eq!(a.roots.len(), 1);
        let f = &a.roots[0];
        assert_eq!(f.count, 5);
        assert_eq!(f.total_ns, 500);
        assert_eq!(f.min_ns, 20);
        assert_eq!(f.max_ns, 280);
    }

    #[test]
    fn json_round_trips() {
        enable_thread();
        {
            let _f = phase(PhaseId::Fork).unwrap();
            let _t = phase(PhaseId::TileExecute).unwrap();
            spin(Duration::from_micros(80));
        }
        let tree = drain_thread();
        let json = tree.to_json();
        assert!(json.starts_with("{\"radcrit_profile\":1,"));
        let back = ProfileTree::from_json(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn collapsed_stacks_carry_semicolon_paths() {
        enable_thread();
        {
            let _f = phase(PhaseId::Fork).unwrap();
            let _t = phase(PhaseId::TileExecute).unwrap();
            spin(Duration::from_micros(1_500));
        }
        let tree = drain_thread();
        let collapsed = tree.to_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("fork "), "{collapsed}");
        assert!(lines[1].starts_with("fork;tile-execute "), "{collapsed}");
        for line in &lines {
            let (_, value) = line.rsplit_once(' ').unwrap();
            value.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn hot_phases_aggregate_across_stack_positions() {
        let leaf = |phase: &str, self_ns| ProfileNode {
            phase: phase.into(),
            count: 1,
            total_ns: self_ns,
            self_ns,
            min_ns: self_ns,
            max_ns: self_ns,
            children: vec![],
        };
        let tree = ProfileTree {
            threads: 1,
            roots: vec![
                ProfileNode {
                    children: vec![leaf("mem-load", 700)],
                    ..leaf("fork", 100)
                },
                ProfileNode {
                    children: vec![leaf("mem-load", 400)],
                    ..leaf("golden", 50)
                },
            ],
        };
        let hot = tree.hot_phases(2);
        assert_eq!(hot[0].0, "mem-load");
        assert_eq!(hot[0].1, 1100);
        assert_eq!(hot[0].2, 2);
        assert_eq!(hot[1].0, "fork");
    }

    #[test]
    fn collector_merges_thread_trees() {
        let collector = ProfileCollector::new();
        let tree = ProfileTree {
            threads: 1,
            roots: vec![ProfileNode {
                phase: "compare".into(),
                count: 4,
                total_ns: 400,
                self_ns: 400,
                min_ns: 90,
                max_ns: 110,
                children: vec![],
            }],
        };
        std::thread::scope(|s| {
            s.spawn(|| collector.merge(&tree));
            s.spawn(|| collector.merge(&tree));
        });
        let snap = collector.snapshot();
        assert_eq!(snap.threads, 2);
        assert_eq!(snap.roots[0].count, 8);
    }

    #[test]
    fn phase_names_round_trip_the_registry() {
        for p in PhaseId::ALL {
            assert_eq!(PhaseId::from_name(p.name()), Some(p));
        }
        assert_eq!(PhaseId::from_name("nope"), None);
    }
}
