//! Campaign health rules: typed alerts with firing/resolved edges.
//!
//! An [`AlertEngine`] folds periodic [`HealthSample`]s — cumulative
//! fabric counters, shard coverage, queue depth, live-analytics CI
//! width — into the state of six typed rules:
//!
//! | rule | severity | fires when |
//! |---|---|---|
//! | `worker-flapping` | critical | ≥ N worker deaths in the trailing window |
//! | `redispatch-storm` | warning | ≥ N shard re-dispatches in the trailing window |
//! | `shard-stalled` | critical | coverage unchanged for N consecutive sweeps mid-campaign |
//! | `throughput-below-baseline` | warning | windowed coverage rate under the committed like-for-like baseline by more than the bench-gate tolerance |
//! | `queue-saturated` | warning | queue depth at the configured capacity |
//! | `fit-ci-stalled` | warning | FIT 95 % CI width not shrinking over N sweeps despite new injections |
//!
//! Every state flip is an [`AlertEvent`] edge — rendered as one
//! structured JSONL log line — and the engine exports
//! `radcrit_alert_active{rule}` gauges plus
//! `radcrit_alerts_fired_total{rule}` counters. Time is injected
//! ([`std::time::Instant`] parameters, mirroring the fabric's worker
//! registry), so every rule is deterministic under test.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::json::{escape, fmt_f64};
use crate::metrics::MetricsRegistry;

/// Samples the trailing-window ring buffer keeps at most (a pure
/// backstop — pruning by window age is what bounds it in practice).
const HISTORY_CAP: usize = 4_096;

/// The six health rules the engine evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertRule {
    /// Workers dying (alive→dead heartbeat transitions) in the window.
    WorkerFlapping,
    /// Shard remainders re-dispatched to survivors in the window.
    RedispatchStorm,
    /// Shard coverage frozen mid-campaign for N consecutive sweeps.
    ShardStalled,
    /// Windowed injection coverage rate below the committed baseline.
    ThroughputBelowBaseline,
    /// Job queue at capacity.
    QueueSaturated,
    /// FIT confidence interval no longer converging despite new data.
    FitCiStalled,
}

/// Alert severity, ordered: warnings degrade, criticals endanger the
/// campaign's result or deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Degraded but self-healing or cosmetic.
    Warning,
    /// The campaign's completion or statistical validity is at risk.
    Critical,
}

impl Severity {
    /// Wire name (`warning`, `critical`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl AlertRule {
    /// Every rule, in evaluation and display order.
    pub const ALL: [AlertRule; 6] = [
        AlertRule::WorkerFlapping,
        AlertRule::RedispatchStorm,
        AlertRule::ShardStalled,
        AlertRule::ThroughputBelowBaseline,
        AlertRule::QueueSaturated,
        AlertRule::FitCiStalled,
    ];

    /// Kebab-case wire name, used in JSON bodies, log lines and the
    /// `rule` metric label.
    pub fn name(self) -> &'static str {
        match self {
            AlertRule::WorkerFlapping => "worker-flapping",
            AlertRule::RedispatchStorm => "redispatch-storm",
            AlertRule::ShardStalled => "shard-stalled",
            AlertRule::ThroughputBelowBaseline => "throughput-below-baseline",
            AlertRule::QueueSaturated => "queue-saturated",
            AlertRule::FitCiStalled => "fit-ci-stalled",
        }
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            AlertRule::WorkerFlapping | AlertRule::ShardStalled => Severity::Critical,
            _ => Severity::Warning,
        }
    }

    fn index(self) -> usize {
        AlertRule::ALL
            .iter()
            .position(|r| *r == self)
            .expect("rule in ALL")
    }
}

/// Rule thresholds. The defaults are tuned for the coordinator's
/// heartbeat cadence; daemons override `queue_capacity`, coordinators
/// override `window` (from their heartbeat timeout) and
/// `baseline_rate` (from the committed bench history).
#[derive(Debug, Clone)]
pub struct AlertConfig {
    /// Trailing window for flap / storm / throughput evaluation.
    pub window: Duration,
    /// Worker deaths within the window that mean flapping.
    pub flap_deaths: u64,
    /// Re-dispatches within the window that mean a storm.
    pub storm_redispatches: u64,
    /// Consecutive sweeps with frozen coverage that mean a stall.
    pub stall_sweeps: u32,
    /// Queue capacity; `None` disables `queue-saturated`.
    pub queue_capacity: Option<u64>,
    /// Committed like-for-like injections/sec baseline; `None`
    /// disables `throughput-below-baseline`.
    pub baseline_rate: Option<f64>,
    /// Fractional shortfall under the baseline that fires (mirrors the
    /// bench history gate's `REGRESSION_TOLERANCE`).
    pub throughput_tolerance: f64,
    /// Consecutive non-converging sweeps that mean a CI stall.
    pub ci_stall_sweeps: u32,
    /// Minimum relative CI-width shrink per sweep-with-new-data below
    /// which the sweep counts as non-converging.
    pub ci_min_shrink: f64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            window: Duration::from_secs(10),
            flap_deaths: 1,
            storm_redispatches: 1,
            stall_sweeps: 400,
            queue_capacity: None,
            baseline_rate: None,
            throughput_tolerance: 0.10,
            ci_stall_sweeps: 400,
            ci_min_shrink: 0.0,
        }
    }
}

/// One periodic health observation. Counters are cumulative (the
/// engine computes trailing-window deltas itself); optional fields
/// disable the rules that need them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSample {
    /// Cumulative worker alive→dead transitions.
    pub worker_deaths_total: u64,
    /// Cumulative shard re-dispatches.
    pub redispatches_total: u64,
    /// Injection indices covered by the merged stream so far.
    pub covered: u64,
    /// Total injection indices in the campaign (0 when not sharded).
    pub total: u64,
    /// Whether the campaign has finished (suppresses stall rules).
    pub done: bool,
    /// Current job-queue depth, when the observer has a queue.
    pub queue_depth: Option<u64>,
    /// Width of the live FIT 95 % confidence interval.
    pub fit_ci_width: Option<f64>,
    /// Injections folded into the live analytics so far.
    pub injections_folded: u64,
}

/// One firing/resolved edge of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// The rule that flipped.
    pub rule: AlertRule,
    /// `true` on firing, `false` on resolution.
    pub firing: bool,
    /// µs since the engine's first observation.
    pub at_us: u64,
    /// Human-readable cause with the numbers that tripped it.
    pub message: String,
}

impl AlertEvent {
    /// Renders the edge as one structured JSONL log line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"radcrit_alert\":1,\"edge\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\
             \"at_us\":{},\"message\":\"{}\"}}",
            if self.firing { "firing" } else { "resolved" },
            self.rule.name(),
            self.rule.severity().name(),
            self.at_us,
            escape(&self.message)
        )
    }
}

/// Per-rule engine state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    active: bool,
    since_us: u64,
    fired_total: u64,
    message: String,
}

/// The health rules evaluator. Feed it one [`HealthSample`] per sweep
/// with [`AlertEngine::observe`]; re-evaluate lazily (e.g. at scrape
/// time, after the campaign stops sweeping) with
/// [`AlertEngine::evaluate_at`].
#[derive(Debug)]
pub struct AlertEngine {
    config: AlertConfig,
    epoch: Option<Instant>,
    history: VecDeque<(Instant, HealthSample)>,
    states: [RuleState; 6],
    stall_streak: u32,
    ci_streak: u32,
    last_covered: Option<u64>,
    last_ci: Option<(u64, f64)>,
}

impl AlertEngine {
    /// Creates an engine with the given thresholds.
    pub fn new(config: AlertConfig) -> Self {
        AlertEngine {
            config,
            epoch: None,
            history: VecDeque::new(),
            states: Default::default(),
            stall_streak: 0,
            ci_streak: 0,
            last_covered: None,
            last_ci: None,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &AlertConfig {
        &self.config
    }

    fn at_us(&self, now: Instant) -> u64 {
        self.epoch
            .and_then(|e| now.checked_duration_since(e))
            .map_or(0, |d| d.as_micros() as u64)
    }

    /// Folds a fresh sample taken at `now` and returns the edges it
    /// produced. Consecutive-sweep streaks (stall rules) only advance
    /// here, never on lazy re-evaluation.
    pub fn observe(&mut self, now: Instant, sample: HealthSample) -> Vec<AlertEvent> {
        self.epoch.get_or_insert(now);

        // Coverage-stall streak: frozen mid-campaign coverage.
        let mid_campaign = !sample.done && sample.covered > 0 && sample.covered < sample.total;
        if mid_campaign && self.last_covered == Some(sample.covered) {
            self.stall_streak = self.stall_streak.saturating_add(1);
        } else {
            self.stall_streak = 0;
        }
        self.last_covered = Some(sample.covered);

        // CI-convergence streak: new injections folded, width stuck.
        if let (Some(width), Some((prev_folded, prev_width))) = (sample.fit_ci_width, self.last_ci)
        {
            let new_data = sample.injections_folded > prev_folded;
            let shrink = prev_width - width;
            if !sample.done && new_data && shrink <= prev_width * self.config.ci_min_shrink {
                self.ci_streak = self.ci_streak.saturating_add(1);
            } else if new_data || sample.done {
                self.ci_streak = 0;
            }
        }
        if let Some(width) = sample.fit_ci_width {
            self.last_ci = Some((sample.injections_folded, width));
        }

        self.history.push_back((now, sample));
        if self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
        self.evaluate_at(now)
    }

    /// Re-evaluates every rule at `now` without a fresh sample: the
    /// trailing window slides forward, so flap/storm alerts resolve
    /// once their window drains even after sweeps stop.
    pub fn evaluate_at(&mut self, now: Instant) -> Vec<AlertEvent> {
        let Some((_, latest)) = self.history.back() else {
            return Vec::new();
        };
        let latest = latest.clone();
        while let Some(&(t, _)) = self.history.front() {
            if self.history.len() > 1 && t + self.config.window < now {
                self.history.pop_front();
            } else {
                break;
            }
        }
        let (first_at, first) = self.history.front().cloned().expect("non-empty history");

        let deaths = latest
            .worker_deaths_total
            .saturating_sub(first.worker_deaths_total);
        let redispatches = latest
            .redispatches_total
            .saturating_sub(first.redispatches_total);
        // When the only sample left predates the window, nothing
        // happened inside it.
        let in_window = first_at + self.config.window >= now;
        let (deaths, redispatches) = if in_window {
            (deaths, redispatches)
        } else {
            (0, 0)
        };

        let cfg = &self.config;
        let mut desired: [(bool, String); 6] = Default::default();
        desired[AlertRule::WorkerFlapping.index()] = (
            deaths >= cfg.flap_deaths,
            format!(
                "{deaths} worker death(s) in the trailing {:?} window",
                cfg.window
            ),
        );
        desired[AlertRule::RedispatchStorm.index()] = (
            redispatches >= cfg.storm_redispatches,
            format!(
                "{redispatches} shard re-dispatch(es) in the trailing {:?} window",
                cfg.window
            ),
        );
        desired[AlertRule::ShardStalled.index()] = (
            self.stall_streak >= cfg.stall_sweeps,
            format!(
                "coverage frozen at {}/{} for {} consecutive sweeps",
                latest.covered, latest.total, self.stall_streak
            ),
        );
        let throughput = (|| {
            let baseline = cfg.baseline_rate?;
            if latest.done || latest.covered == 0 || latest.covered >= latest.total {
                return None;
            }
            let latest_at = self.history.back().map(|&(t, _)| t)?;
            let dt = latest_at.checked_duration_since(first_at)?;
            if dt < cfg.window / 2 {
                return None;
            }
            let rate = latest.covered.saturating_sub(first.covered) as f64 / dt.as_secs_f64();
            let floor = baseline * (1.0 - cfg.throughput_tolerance);
            (rate < floor).then_some((rate, baseline))
        })();
        desired[AlertRule::ThroughputBelowBaseline.index()] = match throughput {
            Some((rate, baseline)) => (
                true,
                format!(
                    "windowed rate {} inj/s below the committed baseline {} inj/s",
                    fmt_f64((rate * 10.0).round() / 10.0),
                    fmt_f64((baseline * 10.0).round() / 10.0)
                ),
            ),
            None => (false, "windowed rate within the baseline gate".to_owned()),
        };
        let queue_full = matches!(
            (latest.queue_depth, cfg.queue_capacity),
            (Some(depth), Some(cap)) if cap > 0 && depth >= cap
        );
        desired[AlertRule::QueueSaturated.index()] = (
            queue_full,
            format!(
                "queue depth {} at capacity {}",
                latest.queue_depth.unwrap_or(0),
                cfg.queue_capacity.unwrap_or(0)
            ),
        );
        desired[AlertRule::FitCiStalled.index()] = (
            self.ci_streak >= cfg.ci_stall_sweeps,
            format!(
                "FIT 95% CI width stuck at {} for {} sweeps with new injections",
                fmt_f64(latest.fit_ci_width.unwrap_or(f64::NAN)),
                self.ci_streak
            ),
        );

        let at_us = self.at_us(now);
        let mut edges = Vec::new();
        for rule in AlertRule::ALL {
            let (want, message) = desired[rule.index()].clone();
            let state = &mut self.states[rule.index()];
            if want == state.active {
                continue;
            }
            state.active = want;
            state.since_us = at_us;
            state.message = message.clone();
            if want {
                state.fired_total += 1;
            }
            edges.push(AlertEvent {
                rule,
                firing: want,
                at_us,
                message,
            });
        }
        edges
    }

    /// Whether `rule` is currently firing.
    pub fn is_active(&self, rule: AlertRule) -> bool {
        self.states[rule.index()].active
    }

    /// How many times `rule` has fired since the engine started.
    pub fn fired_total(&self, rule: AlertRule) -> u64 {
        self.states[rule.index()].fired_total
    }

    /// Sets the `radcrit_alert_active{rule}` gauge for every rule.
    /// Firing-edge counters are the caller's job (see [`export_edges`]).
    pub fn export_gauges(&self, metrics: &MetricsRegistry) {
        for rule in AlertRule::ALL {
            metrics.gauge_set(
                "radcrit_alert_active",
                &[("rule", rule.name())],
                if self.is_active(rule) { 1.0 } else { 0.0 },
            );
        }
    }

    /// Renders the full rule table as the `GET /alerts` body: one entry
    /// per rule with state, severity, firing edge timestamp, cumulative
    /// fire count and the last edge's message.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = AlertRule::ALL
            .iter()
            .map(|&rule| {
                let s = &self.states[rule.index()];
                format!(
                    "{{\"rule\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\",\
                     \"since_us\":{},\"fired_total\":{},\"message\":\"{}\"}}",
                    rule.name(),
                    rule.severity().name(),
                    if s.active { "firing" } else { "ok" },
                    s.since_us,
                    s.fired_total,
                    escape(&s.message)
                )
            })
            .collect();
        format!("{{\"radcrit_alerts\":1,\"alerts\":[{}]}}", rows.join(","))
    }
}

/// Bumps `radcrit_alerts_fired_total{rule}` for every firing edge in
/// `edges` — call with each batch [`AlertEngine::observe`] /
/// [`AlertEngine::evaluate_at`] returns.
pub fn export_edges(edges: &[AlertEvent], metrics: &MetricsRegistry) {
    for edge in edges {
        if edge.firing {
            metrics.counter_add(
                "radcrit_alerts_fired_total",
                &[("rule", edge.rule.name())],
                1,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Instant {
        Instant::now()
    }

    fn engine(config: AlertConfig) -> AlertEngine {
        AlertEngine::new(config)
    }

    fn sample() -> HealthSample {
        HealthSample {
            total: 1_000,
            covered: 10,
            ..HealthSample::default()
        }
    }

    #[test]
    fn a_worker_death_fires_flapping_and_the_window_resolves_it() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            window: Duration::from_secs(2),
            ..AlertConfig::default()
        });
        assert!(e.observe(t0, sample()).is_empty());
        let edges = e.observe(
            t0 + Duration::from_millis(200),
            HealthSample {
                worker_deaths_total: 1,
                ..sample()
            },
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].rule, AlertRule::WorkerFlapping);
        assert!(edges[0].firing);
        assert!(e.is_active(AlertRule::WorkerFlapping));
        assert_eq!(e.fired_total(AlertRule::WorkerFlapping), 1);

        // No new deaths: once the window drains, the alert resolves —
        // even via lazy re-evaluation with no fresh sample.
        let edges = e.evaluate_at(t0 + Duration::from_secs(5));
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].firing);
        assert!(!e.is_active(AlertRule::WorkerFlapping));
        assert_eq!(e.fired_total(AlertRule::WorkerFlapping), 1);
    }

    #[test]
    fn redispatches_fire_and_resolve_the_storm_rule() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            window: Duration::from_secs(2),
            storm_redispatches: 2,
            ..AlertConfig::default()
        });
        e.observe(t0, sample());
        let edges = e.observe(
            t0 + Duration::from_millis(100),
            HealthSample {
                redispatches_total: 1,
                ..sample()
            },
        );
        assert!(edges.is_empty(), "one redispatch is under the threshold");
        let edges = e.observe(
            t0 + Duration::from_millis(200),
            HealthSample {
                redispatches_total: 2,
                ..sample()
            },
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].rule, AlertRule::RedispatchStorm);
        assert!(edges[0].firing);
        let edges = e.evaluate_at(t0 + Duration::from_secs(10));
        assert!(edges
            .iter()
            .any(|ev| ev.rule == AlertRule::RedispatchStorm && !ev.firing));
    }

    #[test]
    fn frozen_coverage_stalls_and_progress_resolves() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            stall_sweeps: 3,
            ..AlertConfig::default()
        });
        let mut edges = Vec::new();
        for i in 0..5 {
            edges = e.observe(t0 + Duration::from_millis(100 * i), sample());
        }
        assert!(e.is_active(AlertRule::ShardStalled), "{edges:?}");
        let edges = e.observe(
            t0 + Duration::from_millis(600),
            HealthSample {
                covered: 11,
                ..sample()
            },
        );
        assert!(edges
            .iter()
            .any(|ev| ev.rule == AlertRule::ShardStalled && !ev.firing));
        // A finished campaign never counts as stalled.
        let mut done = sample();
        done.covered = 1_000;
        done.done = true;
        for i in 0..5 {
            e.observe(t0 + Duration::from_millis(700 + 100 * i), done.clone());
        }
        assert!(!e.is_active(AlertRule::ShardStalled));
    }

    #[test]
    fn slow_windowed_throughput_fires_against_the_baseline() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            window: Duration::from_secs(4),
            baseline_rate: Some(100.0),
            ..AlertConfig::default()
        });
        e.observe(
            t0,
            HealthSample {
                covered: 10,
                total: 100_000,
                ..HealthSample::default()
            },
        );
        // 40 indices in 3 s ≈ 13 inj/s — far below the 90 inj/s floor.
        let edges = e.observe(
            t0 + Duration::from_secs(3),
            HealthSample {
                covered: 50,
                total: 100_000,
                ..HealthSample::default()
            },
        );
        assert!(e.is_active(AlertRule::ThroughputBelowBaseline), "{edges:?}");
        let fired = edges
            .iter()
            .find(|ev| ev.rule == AlertRule::ThroughputBelowBaseline)
            .unwrap();
        assert!(fired.message.contains("baseline"), "{}", fired.message);
        // Recovered rate resolves it: 600 indices in the next 2 s.
        let edges = e.observe(
            t0 + Duration::from_secs(5),
            HealthSample {
                covered: 650,
                total: 100_000,
                ..HealthSample::default()
            },
        );
        assert!(
            edges
                .iter()
                .any(|ev| ev.rule == AlertRule::ThroughputBelowBaseline && !ev.firing),
            "{edges:?}"
        );
    }

    #[test]
    fn queue_saturation_tracks_the_configured_capacity() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            queue_capacity: Some(4),
            ..AlertConfig::default()
        });
        let mut s = HealthSample {
            queue_depth: Some(4),
            ..HealthSample::default()
        };
        let edges = e.observe(t0, s.clone());
        assert!(edges
            .iter()
            .any(|ev| ev.rule == AlertRule::QueueSaturated && ev.firing));
        s.queue_depth = Some(1);
        let edges = e.observe(t0 + Duration::from_millis(100), s);
        assert!(edges
            .iter()
            .any(|ev| ev.rule == AlertRule::QueueSaturated && !ev.firing));
    }

    #[test]
    fn a_non_converging_ci_fires_and_convergence_resolves() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            ci_stall_sweeps: 3,
            ..AlertConfig::default()
        });
        for i in 0..5u64 {
            e.observe(
                t0 + Duration::from_millis(100 * i),
                HealthSample {
                    covered: 10 + i,
                    total: 1_000,
                    injections_folded: 10 * (i + 1),
                    fit_ci_width: Some(4.2),
                    ..HealthSample::default()
                },
            );
        }
        assert!(e.is_active(AlertRule::FitCiStalled));
        let edges = e.observe(
            t0 + Duration::from_millis(600),
            HealthSample {
                covered: 100,
                total: 1_000,
                injections_folded: 100,
                fit_ci_width: Some(2.0),
                ..HealthSample::default()
            },
        );
        assert!(edges
            .iter()
            .any(|ev| ev.rule == AlertRule::FitCiStalled && !ev.firing));
    }

    #[test]
    fn edges_render_as_structured_jsonl_and_states_as_the_alerts_body() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            window: Duration::from_secs(2),
            ..AlertConfig::default()
        });
        e.observe(t0, sample());
        let edges = e.observe(
            t0 + Duration::from_millis(50),
            HealthSample {
                worker_deaths_total: 2,
                redispatches_total: 1,
                ..sample()
            },
        );
        assert_eq!(edges.len(), 2);
        let line = edges[0].to_json_line();
        assert!(line.contains("\"radcrit_alert\":1"), "{line}");
        assert!(line.contains("\"edge\":\"firing\""), "{line}");
        assert!(line.contains("\"rule\":\"worker-flapping\""), "{line}");
        assert!(line.contains("\"severity\":\"critical\""), "{line}");
        crate::json::parse_line(&line).unwrap();

        let body = e.to_json();
        assert!(body.contains("\"radcrit_alerts\":1"), "{body}");
        assert!(
            body.contains(
                "\"rule\":\"worker-flapping\",\"severity\":\"critical\",\"state\":\"firing\""
            ),
            "{body}"
        );
        assert!(
            body.contains("\"rule\":\"queue-saturated\",\"severity\":\"warning\",\"state\":\"ok\""),
            "{body}"
        );
        crate::json::parse_line(&body).unwrap();
        for rule in AlertRule::ALL {
            assert!(body.contains(rule.name()), "{body} missing {}", rule.name());
        }
    }

    #[test]
    fn gauges_and_fired_counters_export_to_the_registry() {
        let t0 = base();
        let mut e = engine(AlertConfig {
            window: Duration::from_secs(2),
            ..AlertConfig::default()
        });
        e.observe(t0, sample());
        let edges = e.observe(
            t0 + Duration::from_millis(50),
            HealthSample {
                worker_deaths_total: 1,
                ..sample()
            },
        );
        let m = MetricsRegistry::new();
        export_edges(&edges, &m);
        e.export_gauges(&m);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("radcrit_alerts_fired_total", &[("rule", "worker-flapping")]),
            Some(1)
        );
        let prom = snap.to_prometheus();
        assert!(
            prom.contains("radcrit_alert_active{rule=\"worker-flapping\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("radcrit_alert_active{rule=\"queue-saturated\"} 0"),
            "{prom}"
        );
    }
}
