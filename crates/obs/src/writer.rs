//! Index-sequenced JSONL event stream writer.
//!
//! The campaign collector receives per-injection results in worker
//! completion order, which varies with thread count and load. The
//! [`EventWriter`] restores determinism: each injection's events are
//! submitted as one block keyed by injection index, blocks are buffered
//! until the next expected index arrives, and the file is written in
//! strict index order — so a fixed-seed campaign produces a
//! byte-identical stream no matter how many workers ran it.
//!
//! On resume the writer re-reads the existing stream, tolerates a torn
//! final line (truncating it away), and reports which injection indices
//! were already emitted so the campaign can skip them — no duplicated
//! and no missing indices across kill/resume cycles.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::event::{parse_event_line, Event};

/// Writes an event stream to disk in injection-index order.
#[derive(Debug)]
pub struct EventWriter {
    out: BufWriter<File>,
    /// Indices still awaited, in emission order.
    expected: VecDeque<u64>,
    /// Blocks that arrived ahead of the expected front.
    buffered: BTreeMap<u64, Vec<String>>,
    /// Detail-event sampling stride (1 = every injection).
    sample: u64,
}

impl EventWriter {
    /// Creates a fresh stream expecting injections `0..total`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create(path: &Path, total: u64, sample: u64) -> std::io::Result<Self> {
        Self::create_range(path, 0, total, sample)
    }

    /// Creates a fresh stream expecting only injections `start..end` —
    /// the shard-range variant. Blocks for the shard flush as soon as
    /// they are contiguous with the shard front, so a live tailer sees
    /// the stream grow instead of everything gapping until `finish`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create_range(path: &Path, start: u64, end: u64, sample: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(EventWriter {
            out: BufWriter::new(file),
            expected: (start..end).collect(),
            buffered: BTreeMap::new(),
            sample: sample.max(1),
        })
    }

    /// Reopens an existing stream for append, returning the writer and
    /// the set of injection indices already present in the file.
    ///
    /// A torn final line (interrupted write) is truncated away; the
    /// campaign re-submits that injection's block. Missing files are
    /// treated as empty.
    ///
    /// # Errors
    ///
    /// Any I/O error reading or truncating the file.
    pub fn resume(path: &Path, total: u64, sample: u64) -> std::io::Result<(Self, HashSet<u64>)> {
        Self::resume_range(path, 0, total, sample)
    }

    /// Shard-range variant of [`EventWriter::resume`]: only indices in
    /// `start..end` are awaited; everything already in the file is
    /// reported back regardless of range.
    ///
    /// # Errors
    ///
    /// Any I/O error reading or truncating the file.
    pub fn resume_range(
        path: &Path,
        start: u64,
        end: u64,
        sample: u64,
    ) -> std::io::Result<(Self, HashSet<u64>)> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut have = HashSet::new();
        let mut valid_len = 0usize;
        for line in text.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break; // torn final line: no newline — drop it
            };
            match parse_event_line(body) {
                Ok(event) => {
                    if let Some(i) = event.index {
                        have.insert(i);
                    }
                    valid_len += line.len();
                }
                Err(_) => break, // torn mid-file write; drop the tail
            }
        }
        // No truncate: the valid prefix is kept, only a torn tail is cut.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let out = BufWriter::new(file);
        let expected = (start..end).filter(|i| !have.contains(i)).collect();
        Ok((
            EventWriter {
                out,
                expected,
                buffered: BTreeMap::new(),
                sample: sample.max(1),
            },
            have,
        ))
    }

    /// Whether detail events should be collected for this injection
    /// (index falls on the sampling stride).
    pub fn sampled(&self, index: u64) -> bool {
        index.is_multiple_of(self.sample)
    }

    /// Writes a campaign-level event (no index sequencing) immediately.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the line.
    pub fn emit_top(&mut self, event: &Event) -> std::io::Result<()> {
        self.out.write_all(event.line().as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Submits one injection's event block; flushes every block that is
    /// now contiguous with the expected-index front.
    ///
    /// # Errors
    ///
    /// Any I/O error writing flushed blocks.
    pub fn submit(&mut self, index: u64, events: &[Event]) -> std::io::Result<()> {
        self.buffered
            .insert(index, events.iter().map(Event::line).collect());
        while let Some(&front) = self.expected.front() {
            let Some(lines) = self.buffered.remove(&front) else {
                break;
            };
            self.expected.pop_front();
            for line in lines {
                self.out.write_all(line.as_bytes())?;
                self.out.write_all(b"\n")?;
            }
        }
        Ok(())
    }

    /// Flushes any out-of-order remainder (in index order) and syncs the
    /// stream. Called once at end of run; a budget-stopped campaign
    /// legitimately leaves gaps, and this writes what it has.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or flushing.
    pub fn finish(&mut self) -> std::io::Result<()> {
        for (_, lines) in std::mem::take(&mut self.buffered) {
            for line in lines {
                self.out.write_all(line.as_bytes())?;
                self.out.write_all(b"\n")?;
            }
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuffer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "radcrit_obs_writer_{tag}_{}_{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn block(i: u64, site: &str) -> Vec<Event> {
        let mut buf = EventBuffer::for_injection(i);
        buf.emit("strike").str("site", site);
        buf.emit("outcome").str("tag", "MASKED");
        buf.take()
    }

    #[test]
    fn out_of_order_blocks_come_out_in_index_order() {
        let path = temp_path("order");
        let mut w = EventWriter::create(&path, 3, 1).unwrap();
        w.submit(2, &block(2, "l2")).unwrap();
        w.submit(0, &block(0, "fpu")).unwrap();
        w.submit(1, &block(1, "sfu")).unwrap();
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let indices: Vec<u64> = text
            .lines()
            .map(|l| parse_event_line(l).unwrap().index.unwrap())
            .collect();
        assert_eq!(indices, [0, 0, 1, 1, 2, 2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_flushes_gapped_remainder() {
        let path = temp_path("gap");
        let mut w = EventWriter::create(&path, 4, 1).unwrap();
        // Index 0 never arrives (budget stop); 3 and 1 did.
        w.submit(3, &block(3, "l1")).unwrap();
        w.submit(1, &block(1, "fpu")).unwrap();
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let indices: Vec<u64> = text
            .lines()
            .map(|l| parse_event_line(l).unwrap().index.unwrap())
            .collect();
        assert_eq!(indices, [1, 1, 3, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_reports_emitted_indices_and_truncates_torn_tail() {
        let path = temp_path("resume");
        let mut w = EventWriter::create(&path, 4, 1).unwrap();
        w.emit_top(&EventBuffer::enabled().emit_into("run_begin"))
            .unwrap();
        w.submit(0, &block(0, "fpu")).unwrap();
        w.submit(1, &block(1, "l2")).unwrap();
        w.finish().unwrap();
        drop(w);
        // Simulate a kill mid-write: append a torn, newline-less line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"e\":\"strike\",\"i\":2,\"si").unwrap();
        }
        let (mut w, have) = EventWriter::resume(&path, 4, 1).unwrap();
        assert_eq!(have, HashSet::from([0, 1]));
        w.submit(3, &block(3, "sfu")).unwrap();
        w.submit(2, &block(2, "l1")).unwrap();
        w.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut seen = Vec::new();
        for line in text.lines() {
            let e = parse_event_line(line).unwrap(); // no torn garbage left
            if let Some(i) = e.index {
                seen.push(i);
            }
        }
        assert_eq!(seen, [0, 0, 1, 1, 2, 2, 3, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampling_stride() {
        let path = temp_path("sample");
        let w = EventWriter::create(&path, 10, 4).unwrap();
        let sampled: Vec<u64> = (0..10).filter(|&i| w.sampled(i)).collect();
        assert_eq!(sampled, [0, 4, 8]);
        std::fs::remove_file(&path).ok();
    }

    impl EventBuffer {
        /// Test helper: build one event directly.
        fn emit_into(mut self, kind: &str) -> Event {
            self.emit(kind);
            self.take().remove(0)
        }
    }
}
