//! A minimal line-oriented JSON codec shared by the radcrit on-disk
//! formats (campaign checkpoints, event streams, metrics snapshots).
//!
//! Floats are written with Rust's shortest round-trip formatting
//! ([`fmt_f64`]), so `inf`, `-inf` and `NaN` appear verbatim — a
//! deliberate deviation from strict JSON (infinite mean relative errors
//! are real data in this workspace) that keeps every codec lossless.
//! The reader ([`parse_line`]) accepts exactly what the writers emit:
//! objects, arrays, strings, numbers-as-source-text, booleans and null.

/// A parsed JSON value. Numbers keep their source text so `f64`s parse
/// losslessly and integers never round-trip through a float.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text for lossless parsing.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(_) => self.parse_token(),
            None => Err("unexpected end of line".into()),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            let value = self.parse_value()?;
            items.push(value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid utf-8".to_string())?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some((i, c)) => {
                    out.push(c);
                    self.pos += i + c.len_utf8();
                }
            }
        }
    }

    fn parse_token(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b',' || b == b'}' || b == b']' || b == b':' || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8".to_string())?;
        match tok {
            "" => Err(format!("empty token at byte {start}")),
            "null" => Ok(Json::Null),
            "true" => Ok(Json::Bool(true)),
            "false" => Ok(Json::Bool(false)),
            _ => Ok(Json::Num(tok.to_owned())),
        }
    }
}

/// Parses one line as a single JSON value; trailing garbage is an error.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse_line(line: &str) -> Result<Json, String> {
    let mut p = Parser::new(line);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Renders a parsed value back to JSON source text. Numbers re-emit
/// their original source text, so `parse_line ∘ render` is lossless.
pub fn render(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => n.clone(),
        Json::Str(s) => format!("\"{}\"", escape(s)),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` with the shortest representation that round-trips
/// through `str::parse::<f64>`, including `inf`, `-inf` and `NaN`.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// [`fmt_f64`], with `None` rendered as `null`.
pub fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), fmt_f64)
}

// ---------------------------------------------------------------------
// Accessors over parsed objects
// ---------------------------------------------------------------------

/// Looks up `key` in an object's fields.
///
/// # Errors
///
/// When the field is absent.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Views a value as an object's field list.
///
/// # Errors
///
/// When the value is not an object.
pub fn as_obj(v: &Json) -> Result<&[(String, Json)], String> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => Err("expected an object".into()),
    }
}

/// Reads a string field.
///
/// # Errors
///
/// When the field is absent or not a string.
pub fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

/// Reads a boolean field.
///
/// # Errors
///
/// When the field is absent or not a boolean.
pub fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("field {key:?} is not a bool")),
    }
}

/// Reads an unsigned integer field.
///
/// # Errors
///
/// When the field is absent or not an integer.
pub fn get_usize(obj: &[(String, Json)], key: &str) -> Result<usize, String> {
    match get(obj, key)? {
        Json::Num(n) => n
            .parse()
            .map_err(|_| format!("field {key:?} is not an integer")),
        _ => Err(format!("field {key:?} is not a number")),
    }
}

/// Reads an unsigned 64-bit integer field. Unlike [`get_usize`], the
/// value never round-trips through `usize`, so 32-bit builds cannot
/// silently truncate journaled ranges.
///
/// # Errors
///
/// When the field is absent or not an integer.
pub fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::Num(n) => n
            .parse()
            .map_err(|_| format!("field {key:?} is not an integer")),
        _ => Err(format!("field {key:?} is not a number")),
    }
}

/// Reads an `f64` field (shortest round-trip source text).
///
/// # Errors
///
/// When the field is absent or not a number.
pub fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => n
            .parse()
            .map_err(|_| format!("field {key:?} is not a float")),
        _ => Err(format!("field {key:?} is not a number")),
    }
}

/// Reads a nullable `f64` field.
///
/// # Errors
///
/// When the field is absent or neither a number nor `null`.
pub fn get_opt_f64(obj: &[(String, Json)], key: &str) -> Result<Option<f64>, String> {
    match get(obj, key)? {
        Json::Null => Ok(None),
        Json::Num(n) => n
            .parse()
            .map(Some)
            .map_err(|_| format!("field {key:?} is not a float")),
        _ => Err(format!("field {key:?} is not a number or null")),
    }
}

/// Reads a nullable unsigned integer field.
///
/// # Errors
///
/// When the field is absent or neither an integer nor `null`.
pub fn get_opt_usize(obj: &[(String, Json)], key: &str) -> Result<Option<usize>, String> {
    match get(obj, key)? {
        Json::Null => Ok(None),
        Json::Num(n) => n
            .parse()
            .map(Some)
            .map_err(|_| format!("field {key:?} is not an integer")),
        _ => Err(format!("field {key:?} is not a number or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_objects_strings_numbers() {
        let v = parse_line(r#"{"a":1,"b":"x","c":true,"d":null,"e":-2.5}"#).unwrap();
        let obj = as_obj(&v).unwrap();
        assert_eq!(get_usize(obj, "a").unwrap(), 1);
        assert_eq!(get_str(obj, "b").unwrap(), "x");
        assert!(get_bool(obj, "c").unwrap());
        assert_eq!(get(obj, "d").unwrap(), &Json::Null);
        assert_eq!(get_f64(obj, "e").unwrap(), -2.5);
    }

    #[test]
    fn get_u64_reads_values_beyond_u32() {
        let v = parse_line(r#"{"big":4294967297}"#).unwrap();
        let obj = as_obj(&v).unwrap();
        assert_eq!(get_u64(obj, "big").unwrap(), 4_294_967_297);
        assert!(get_u64(obj, "missing").is_err());
    }

    #[test]
    fn parses_arrays() {
        let v = parse_line(r#"{"t":[1,2,3],"empty":[]}"#).unwrap();
        let obj = as_obj(&v).unwrap();
        match get(obj, "t").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(get(obj, "empty").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn floats_round_trip_including_inf_and_nan() {
        for v in [
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.000_000_000_000_000_2,
        ] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert!(fmt_f64(f64::NAN).parse::<f64>().unwrap().is_nan());
    }

    #[test]
    fn escaped_strings_round_trip() {
        let s = "a \"quoted\"\\\nsite\t\u{1}";
        let line = format!("{{\"s\":\"{}\"}}", escape(s));
        let v = parse_line(&line).unwrap();
        assert_eq!(get_str(as_obj(&v).unwrap(), "s").unwrap(), s);
    }

    #[test]
    fn render_round_trips_through_parse() {
        for src in [
            r#"{"a":1,"b":"x","c":true,"d":null,"e":-2.5,"f":[1,"two",{}]}"#,
            r#"[{"nested":{"deep":[[]]}},0.1,inf]"#,
        ] {
            let v = parse_line(src).unwrap();
            assert_eq!(render(&v), src);
            assert_eq!(parse_line(&render(&v)).unwrap(), v);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_line(r#"{"a":1} extra"#).is_err());
        assert!(parse_line("").is_err());
        assert!(parse_line(r#"{"a":"#).is_err());
    }
}
