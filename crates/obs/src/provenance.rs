//! Fault-provenance records and the per-site breakdown report.
//!
//! A [`ProvenanceRecord`] joins the three halves of one injection's
//! story: the *strike* (site, tile, bit), the *execution* (which victim
//! state was corrupted, which tiles touched struck state afterwards),
//! and the *result* (outcome tag, mismatch count,
//! [`SpatialClass`], mean relative error). Records
//! travel as `provenance` events in the JSONL stream; the
//! [`ProvenanceBreakdown`] aggregates a stream back into the per-site
//! table the `obs-report` subcommand prints — answering "which fault
//! sites produce `Square` corruption, and how bad is it" directly.

use std::collections::BTreeMap;
use std::path::Path;

use radcrit_core::locality::SpatialClass;

use crate::event::{parse_event_line, Event, FieldValue};

/// The full provenance of one injection: strike + execution + result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Injection index within the campaign.
    pub index: u64,
    /// Fault-site name (e.g. `fpu`, `l2`, `watchdog`).
    pub site: String,
    /// Tile at which the strike was scheduled to land, when applicable.
    pub at_tile: Option<u64>,
    /// Tile whose architectural state was actually corrupted (register
    /// strikes pick a victim at delivery time).
    pub victim_tile: Option<u64>,
    /// Execution unit involved, when the site is unit-scoped.
    pub unit: Option<u64>,
    /// Flipped bit index, for single-bit strikes.
    pub bit: Option<u64>,
    /// Whether the strike landed in live state.
    pub delivered: bool,
    /// Tiles that touched struck state after delivery (from the
    /// execution trace).
    pub touched_tiles: Vec<u64>,
    /// Outcome tag: `MASKED`, `SDC`, `CRASH` or `HANG`.
    pub outcome: String,
    /// Number of mismatched output elements.
    pub mismatches: u64,
    /// Spatial class of the output corruption.
    pub class: SpatialClass,
    /// Mean relative error over mismatched elements, when an SDC
    /// produced one (`inf` is real data: golden-zero elements).
    pub mre: Option<f64>,
    /// Whether the SDC survives the tolerance filter (always `false`
    /// for non-SDC outcomes).
    pub critical: bool,
    /// Spatial class of the mismatches surviving the tolerance filter,
    /// present only when [`ProvenanceRecord::critical`] is set.
    pub fclass: Option<SpatialClass>,
}

impl ProvenanceRecord {
    /// Encodes the record as a `provenance` event.
    pub fn to_event(&self) -> Event {
        let mut fields = vec![("site".to_owned(), FieldValue::Str(self.site.clone()))];
        let mut opt = |k: &str, v: Option<u64>| {
            if let Some(v) = v {
                fields.push((k.to_owned(), FieldValue::U64(v)));
            }
        };
        opt("at", self.at_tile);
        opt("victim", self.victim_tile);
        opt("unit", self.unit);
        opt("bit", self.bit);
        fields.push(("delivered".to_owned(), FieldValue::Bool(self.delivered)));
        fields.push((
            "touched".to_owned(),
            FieldValue::Arr(self.touched_tiles.clone()),
        ));
        fields.push(("outcome".to_owned(), FieldValue::Str(self.outcome.clone())));
        fields.push(("mismatches".to_owned(), FieldValue::U64(self.mismatches)));
        fields.push(("class".to_owned(), FieldValue::Str(self.class.to_string())));
        if let Some(mre) = self.mre {
            fields.push(("mre".to_owned(), FieldValue::F64(mre)));
        }
        if self.critical {
            fields.push(("critical".to_owned(), FieldValue::Bool(true)));
        }
        if let Some(fclass) = self.fclass {
            fields.push(("fclass".to_owned(), FieldValue::Str(fclass.to_string())));
        }
        Event {
            kind: "provenance".to_owned(),
            index: Some(self.index),
            fields,
        }
    }

    /// Decodes a `provenance` event back into a record.
    ///
    /// # Errors
    ///
    /// When the event has the wrong kind or a missing/ill-typed field.
    pub fn from_event(event: &Event) -> Result<Self, String> {
        if event.kind != "provenance" {
            return Err(format!("not a provenance event: {:?}", event.kind));
        }
        let index = event.index.ok_or("provenance event without index")?;
        let str_field = |k: &str| -> Result<String, String> {
            match event.field(k) {
                Some(FieldValue::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing or ill-typed field {k:?}")),
            }
        };
        let opt_u64 = |k: &str| -> Result<Option<u64>, String> {
            match event.field(k) {
                None => Ok(None),
                Some(FieldValue::U64(v)) => Ok(Some(*v)),
                _ => Err(format!("ill-typed field {k:?}")),
            }
        };
        let class_name = str_field("class")?;
        let class = class_name
            .parse::<SpatialClass>()
            .map_err(|e| format!("bad spatial class {class_name:?}: {e}"))?;
        Ok(ProvenanceRecord {
            index,
            site: str_field("site")?,
            at_tile: opt_u64("at")?,
            victim_tile: opt_u64("victim")?,
            unit: opt_u64("unit")?,
            bit: opt_u64("bit")?,
            delivered: match event.field("delivered") {
                Some(FieldValue::Bool(b)) => *b,
                _ => return Err("missing or ill-typed field \"delivered\"".into()),
            },
            touched_tiles: match event.field("touched") {
                Some(FieldValue::Arr(tiles)) => tiles.clone(),
                _ => return Err("missing or ill-typed field \"touched\"".into()),
            },
            outcome: str_field("outcome")?,
            mismatches: match event.field("mismatches") {
                Some(FieldValue::U64(v)) => *v,
                _ => return Err("missing or ill-typed field \"mismatches\"".into()),
            },
            class,
            mre: match event.field("mre") {
                None => None,
                Some(FieldValue::F64(v)) => Some(*v),
                Some(FieldValue::U64(v)) => Some(*v as f64),
                _ => return Err("ill-typed field \"mre\"".into()),
            },
            critical: match event.field("critical") {
                None => false,
                Some(FieldValue::Bool(b)) => *b,
                _ => return Err("ill-typed field \"critical\"".into()),
            },
            fclass: match event.field("fclass") {
                None => None,
                Some(FieldValue::Str(s)) => Some(
                    s.parse::<SpatialClass>()
                        .map_err(|e| format!("bad filtered spatial class {s:?}: {e}"))?,
                ),
                _ => return Err("ill-typed field \"fclass\"".into()),
            },
        })
    }
}

/// Per-site aggregate over provenance records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteStats {
    /// Total injections attributed to the site.
    pub runs: u64,
    /// Injections whose strike landed in live state.
    pub delivered: u64,
    /// Outcome tag → count.
    pub outcomes: BTreeMap<String, u64>,
    /// Spatial class name → count (mismatching runs only).
    pub classes: BTreeMap<String, u64>,
    /// Sum of finite mean relative errors.
    pub mre_sum: f64,
    /// Count of finite mean relative errors.
    pub mre_count: u64,
    /// Count of infinite mean relative errors (golden-zero elements).
    pub mre_inf: u64,
}

/// Aggregates provenance records into the `obs-report` site table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvenanceBreakdown {
    sites: BTreeMap<String, SiteStats>,
}

impl ProvenanceBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the aggregate.
    pub fn add(&mut self, rec: &ProvenanceRecord) {
        let stats = self.sites.entry(rec.site.clone()).or_default();
        stats.runs += 1;
        if rec.delivered {
            stats.delivered += 1;
        }
        *stats.outcomes.entry(rec.outcome.clone()).or_default() += 1;
        if rec.mismatches > 0 {
            *stats.classes.entry(rec.class.to_string()).or_default() += 1;
        }
        if let Some(mre) = rec.mre {
            if mre.is_finite() {
                stats.mre_sum += mre;
                stats.mre_count += 1;
            } else {
                stats.mre_inf += 1;
            }
        }
    }

    /// Builds a breakdown by scanning an events JSONL file for
    /// `provenance` events, skipping non-provenance lines.
    ///
    /// # Errors
    ///
    /// I/O errors, or a malformed provenance event (reported with its
    /// line number).
    pub fn from_events_path(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut out = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let Ok(event) = parse_event_line(line) else {
                continue; // torn tail line; writer tolerates it on resume
            };
            if event.kind == "provenance" {
                let rec = ProvenanceRecord::from_event(&event)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                out.add(&rec);
            }
        }
        Ok(out)
    }

    /// The aggregated sites, in name order.
    pub fn sites(&self) -> &BTreeMap<String, SiteStats> {
        &self.sites
    }

    /// Spatial-class counts aggregated over all sites.
    pub fn class_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for stats in self.sites.values() {
            for (class, n) in &stats.classes {
                *out.entry(class.clone()).or_default() += n;
            }
        }
        out
    }

    /// Renders the site table: one row per fault site with outcome
    /// counts, spatial-class counts and relative-error aggregates.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>6} {:>6}  {:<28} {:<28} {}\n",
            "site", "runs", "deliv", "outcomes", "spatial classes", "mean_rel_err"
        ));
        for (site, stats) in &self.sites {
            let fold = |map: &BTreeMap<String, u64>| {
                if map.is_empty() {
                    "-".to_owned()
                } else {
                    map.iter()
                        .map(|(k, v)| format!("{k}:{v}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            };
            let mre = if stats.mre_count == 0 && stats.mre_inf == 0 {
                "-".to_owned()
            } else {
                let mut s = if stats.mre_count > 0 {
                    format!("{:.3e}", stats.mre_sum / stats.mre_count as f64)
                } else {
                    "-".to_owned()
                };
                if stats.mre_inf > 0 {
                    s.push_str(&format!(" ({} inf)", stats.mre_inf));
                }
                s
            };
            out.push_str(&format!(
                "{:<16} {:>6} {:>6}  {:<28} {:<28} {}\n",
                site,
                stats.runs,
                stats.delivered,
                fold(&stats.outcomes),
                fold(&stats.classes),
                mre
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64, site: &str, outcome: &str, class: SpatialClass) -> ProvenanceRecord {
        ProvenanceRecord {
            index,
            site: site.to_owned(),
            at_tile: Some(4),
            victim_tile: None,
            unit: Some(1),
            bit: Some(23),
            delivered: true,
            touched_tiles: vec![4, 5],
            outcome: outcome.to_owned(),
            mismatches: if outcome == "SDC" { 3 } else { 0 },
            class,
            mre: if outcome == "SDC" { Some(0.25) } else { None },
            critical: outcome == "SDC",
            fclass: (outcome == "SDC").then_some(class),
        }
    }

    #[test]
    fn record_round_trips_through_event() {
        let rec = record(9, "register_file", "SDC", SpatialClass::Line);
        let back = ProvenanceRecord::from_event(&rec.to_event()).unwrap();
        assert_eq!(back, rec);
        // Optional fields omitted when absent stay absent.
        let masked = record(2, "l2", "MASKED", SpatialClass::None);
        assert!(masked.to_event().field("mre").is_none());
        assert_eq!(
            ProvenanceRecord::from_event(&masked.to_event()).unwrap(),
            masked
        );
    }

    #[test]
    fn infinite_mre_round_trips() {
        let mut rec = record(1, "fpu", "SDC", SpatialClass::Single);
        rec.mre = Some(f64::INFINITY);
        let back = ProvenanceRecord::from_event(&rec.to_event()).unwrap();
        assert_eq!(back.mre, Some(f64::INFINITY));
    }

    #[test]
    fn breakdown_counts_by_site_and_class() {
        let mut b = ProvenanceBreakdown::new();
        b.add(&record(0, "fpu", "SDC", SpatialClass::Single));
        b.add(&record(1, "fpu", "SDC", SpatialClass::Square));
        b.add(&record(2, "fpu", "MASKED", SpatialClass::None));
        b.add(&record(3, "l2", "SDC", SpatialClass::Line));
        let fpu = &b.sites()["fpu"];
        assert_eq!(fpu.runs, 3);
        assert_eq!(fpu.outcomes["SDC"], 2);
        assert_eq!(fpu.outcomes["MASKED"], 1);
        assert_eq!(fpu.classes["single"], 1);
        assert_eq!(fpu.classes["square"], 1);
        // MASKED run (0 mismatches) contributes no class count.
        assert!(!fpu.classes.contains_key("none"));
        assert_eq!(b.class_totals()["line"], 1);
        assert_eq!(b.class_totals().len(), 3);
        let table = b.render();
        assert!(table.contains("fpu"));
        assert!(table.contains("single:1 square:1"));
    }

    #[test]
    fn infinite_mre_reported_separately() {
        let mut b = ProvenanceBreakdown::new();
        let mut inf = record(0, "sfu", "SDC", SpatialClass::Single);
        inf.mre = Some(f64::INFINITY);
        b.add(&inf);
        b.add(&record(1, "sfu", "SDC", SpatialClass::Single));
        let sfu = &b.sites()["sfu"];
        assert_eq!(sfu.mre_count, 1);
        assert_eq!(sfu.mre_inf, 1);
        assert!(b.render().contains("(1 inf)"));
    }

    #[test]
    fn from_events_path_skips_non_provenance_lines() {
        let path =
            std::env::temp_dir().join(format!("radcrit_obs_prov_{}.jsonl", std::process::id()));
        let rec = record(5, "scheduler", "SDC", SpatialClass::Random);
        let text = format!(
            "{}\n{}\n{}\n",
            r#"{"e":"run_begin","injections":8}"#,
            rec.to_event().line(),
            r#"{"e":"strike","i":5,"site":"scheduler"}"#
        );
        std::fs::write(&path, text).unwrap();
        let b = ProvenanceBreakdown::from_events_path(&path).unwrap();
        assert_eq!(b.sites()["scheduler"].runs, 1);
        std::fs::remove_file(&path).ok();
    }
}
