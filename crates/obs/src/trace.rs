//! Phase-timeline recording and Chrome trace-event export.
//!
//! A [`TraceRecorder`] collects complete wall-clock spans — golden
//! execution, per-injection umbrellas, engine execution, output
//! comparison — from the collector and every worker thread, and
//! serializes them to the Chrome trace-event JSON format that
//! `chrome://tracing` and Perfetto load directly. Timelines are pure
//! presentation: they carry wall-clock data and therefore never enter
//! the deterministic event stream; they live beside the metrics
//! registry as operational output.
//!
//! Timestamps are microseconds relative to the recorder's epoch —
//! by default its creation time, so a trace always starts near
//! `ts = 0`. A daemon that runs many jobs can share one epoch across
//! all of their recorders ([`TraceRecorder::with_epoch`]) so every
//! job's spans live on one process-wide timebase. The span buffer is
//! capped ([`TRACE_SPAN_CAP`]); spans beyond the cap are counted in
//! `dropped_spans` (exported in the trace's top-level metadata) rather
//! than growing without bound on very long campaigns.
//!
//! For federated campaigns, a [`TraceContext`] minted by the
//! coordinator tags every span of a shard's recorder with the shard
//! ordinal and the coordinator-side parent span id, and a
//! [`FleetTrace`] merges many single-process trace documents —
//! rebasing each onto the coordinator's clock via a per-worker offset —
//! into one fleet-wide timeline with named per-process tracks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::json::{self, escape, Json};

/// Maximum number of spans one recorder buffers before dropping.
pub const TRACE_SPAN_CAP: usize = 100_000;

/// The distributed trace identity a coordinator mints per dispatched
/// shard and carries through the job-spec wire format into the worker:
/// which campaign the shard belongs to, which slice of the injection
/// range it is, and which coordinator span dispatched it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Campaign identity (the golden content address — identical for
    /// every shard of one campaign, stable across re-dispatch).
    pub campaign_id: String,
    /// Shard ordinal within the campaign's shard plan.
    pub shard: u64,
    /// Span id of the coordinator's dispatch span that launched this
    /// shard job — the parentage edge of the distributed trace.
    pub parent_span: u64,
}

/// One completed span on some thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceSpan {
    /// Phase name (`golden`, `injection`, `execute`, `compare`, …).
    name: String,
    /// Start, µs since the recorder's epoch.
    ts_us: u64,
    /// Duration in µs.
    dur_us: u64,
    /// Logical thread id (0 = collector, 1.. = workers).
    tid: u64,
    /// Extra key/value args rendered into the span's `args` object
    /// (values are unsigned integers — indices, counts).
    args: Vec<(String, u64)>,
}

/// Thread-safe recorder of completed phase spans.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    spans: Mutex<Vec<TraceSpan>>,
    dropped: AtomicU64,
    cap: usize,
    context: Mutex<Option<TraceContext>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates a recorder whose epoch (`ts = 0`) is now.
    pub fn new() -> Self {
        Self::with_cap(TRACE_SPAN_CAP)
    }

    /// Creates a recorder with a custom span cap (tests exercise the
    /// drop path without recording 100k spans).
    pub fn with_cap(cap: usize) -> Self {
        Self::with_cap_and_epoch(cap, Instant::now())
    }

    /// Creates a recorder whose `ts = 0` is a caller-supplied instant —
    /// a daemon passes its own start time so every job's spans share
    /// one process-wide timebase and merge without per-job skew.
    pub fn with_epoch(epoch: Instant) -> Self {
        Self::with_cap_and_epoch(TRACE_SPAN_CAP, epoch)
    }

    /// [`TraceRecorder::with_cap`] with an explicit epoch.
    pub fn with_cap_and_epoch(cap: usize, epoch: Instant) -> Self {
        TraceRecorder {
            epoch,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
            context: Mutex::new(None),
        }
    }

    /// The instant spans are timestamped against (`ts = 0`).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Attaches a distributed-trace context: every serialized span
    /// gains `shard`/`parent` args and the trace metadata names the
    /// campaign. Idempotent; last write wins.
    pub fn set_context(&self, ctx: TraceContext) {
        *lock_recovering(&self.context) = Some(ctx);
    }

    /// The attached distributed-trace context, if any.
    pub fn context(&self) -> Option<TraceContext> {
        lock_recovering(&self.context).clone()
    }

    /// The span buffer, recovering the guard if a panicking recording
    /// thread poisoned it — a worker panic must not cascade into every
    /// later `record()` and lose the whole timeline.
    fn spans_guard(&self) -> MutexGuard<'_, Vec<TraceSpan>> {
        lock_recovering(&self.spans)
    }

    /// Records a completed span that started at `started` and ends now.
    pub fn record(&self, name: &str, tid: u64, started: Instant, args: &[(&str, u64)]) {
        let ts_us = started
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros() as u64);
        let dur_us = started.elapsed().as_micros() as u64;
        let span = TraceSpan {
            name: name.to_owned(),
            ts_us,
            dur_us,
            tid,
            args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        };
        let mut spans = self.spans_guard();
        if spans.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(span);
        }
    }

    /// Exports the dropped-span count as
    /// `radcrit_trace_dropped_spans_total` so capped drops are visible
    /// on `/metrics`, not only in-process. Call once, at trace
    /// finalization (the counter is cumulative across calls).
    pub fn export_dropped(&self, metrics: &crate::metrics::MetricsRegistry) {
        metrics.counter_add("radcrit_trace_dropped_spans_total", &[], self.dropped());
    }

    /// Number of spans recorded (excludes dropped ones).
    pub fn len(&self) -> usize {
        self.spans_guard().len()
    }

    /// Whether no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped past [`TRACE_SPAN_CAP`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serializes the timeline as Chrome trace-event JSON: complete
    /// (`"ph":"X"`) events sorted by start time, one `pid`, the
    /// caller's `metadata` key/values under a top-level `"metadata"`
    /// object (numbers rendered verbatim). Ends with a newline.
    ///
    /// With a [`TraceContext`] attached, every span's args gain
    /// `"shard"` and `"parent"`, and the metadata records the
    /// campaign id — without a context the output is byte-identical
    /// to what pre-context recorders produced.
    pub fn to_chrome_json(&self, metadata: &[(&str, String)]) -> String {
        let mut spans = self.spans_guard().clone();
        let ctx = self.context();
        spans.sort_by_key(|s| (s.ts_us, s.tid));
        let events: Vec<String> = spans
            .iter()
            .map(|s| {
                let mut args: Vec<String> = s
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                    .collect();
                if let Some(ctx) = &ctx {
                    args.push(format!("\"shard\":{}", ctx.shard));
                    args.push(format!("\"parent\":{}", ctx.parent_span));
                }
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"radcrit\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    escape(&s.name),
                    s.ts_us,
                    s.dur_us,
                    s.tid,
                    args.join(",")
                )
            })
            .collect();
        let ctx_meta = ctx.iter().flat_map(|c| {
            [
                format!("\"campaign_id\":\"{}\"", escape(&c.campaign_id)),
                format!("\"shard\":{}", c.shard),
                format!("\"parent_span\":{}", c.parent_span),
            ]
        });
        let meta: Vec<String> = metadata
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .chain(ctx_meta)
            .chain(std::iter::once(format!(
                "\"dropped_spans\":{}",
                self.dropped()
            )))
            .collect();
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{{}}}}}\n",
            events.join(",\n"),
            meta.join(",")
        )
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// cascading a recording thread's panic into the observer.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Fleet-wide trace merging
// ---------------------------------------------------------------------

/// Builder for one merged fleet-wide Chrome trace: the coordinator's
/// own timeline plus every reachable worker's job trace, each rebased
/// onto the coordinator's clock and rendered as its own named process
/// track. A torn or unreachable worker trace is recorded as skipped
/// without dropping the rest of the fleet timeline.
#[derive(Debug, Default)]
pub struct FleetTrace {
    /// `(rebased_ts_us, pid, rendered_event)` for deterministic sorting.
    events: Vec<(u64, u64, String)>,
    /// `(pid, display name)` process-track labels.
    processes: Vec<(u64, String)>,
    /// Sources whose trace could not be merged, with the reason.
    skipped: Vec<(String, String)>,
    /// Extra top-level metadata, values rendered verbatim.
    metadata: Vec<(String, String)>,
}

impl FleetTrace {
    /// Creates an empty fleet trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a top-level metadata entry (`value` is rendered verbatim,
    /// so strings must arrive pre-quoted/escaped).
    pub fn set_metadata(&mut self, key: &str, value: String) {
        self.metadata.push((key.to_owned(), value));
    }

    /// Names a process track (rendered as a `process_name` metadata
    /// event, which Perfetto shows as the track title).
    pub fn add_process(&mut self, pid: u64, name: &str) {
        self.processes.push((pid, name.to_owned()));
    }

    /// Merges one single-process Chrome trace document under `pid`,
    /// adding `offset_us` to every timestamp (the worker→coordinator
    /// clock rebase; negative rebases clamp at 0). Returns the number
    /// of spans merged.
    ///
    /// # Errors
    ///
    /// A description of why the document could not be parsed — torn
    /// fetches and truncated files land here; callers record the
    /// source via [`FleetTrace::skip`] and keep the rest of the fleet.
    pub fn add_trace(&mut self, pid: u64, doc: &str, offset_us: i64) -> Result<usize, String> {
        let top = json::parse_line(doc.trim())?;
        let obj = json::as_obj(&top)?;
        let events = match json::get(obj, "traceEvents")? {
            Json::Arr(items) => items,
            _ => return Err("traceEvents is not an array".into()),
        };
        let mut merged = 0usize;
        for item in events {
            let ev = json::as_obj(item)?;
            if json::get_str(ev, "ph").unwrap_or("") != "X" {
                continue;
            }
            let name = json::get_str(ev, "name")?;
            let ts = json::get_u64(ev, "ts")?;
            let dur = json::get_u64(ev, "dur").unwrap_or(0);
            let tid = json::get_u64(ev, "tid").unwrap_or(0);
            let args = json::get(ev, "args")
                .map(json::render)
                .unwrap_or_else(|_| "{}".into());
            let rebased = (ts as i64).saturating_add(offset_us).max(0) as u64;
            self.events.push((
                rebased,
                pid,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"radcrit\",\"ph\":\"X\",\
                     \"ts\":{rebased},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                    escape(name)
                ),
            ));
            merged += 1;
        }
        Ok(merged)
    }

    /// Records a source whose trace was not merged (dead worker, torn
    /// fetch, unparseable document) — surfaced in the output metadata.
    pub fn skip(&mut self, source: &str, reason: &str) {
        self.skipped.push((source.to_owned(), reason.to_owned()));
    }

    /// Spans merged so far.
    pub fn span_count(&self) -> usize {
        self.events.len()
    }

    /// Serializes the merged fleet timeline: `process_name` metadata
    /// events first, then every span sorted by rebased start time.
    /// Skipped sources are listed in the top-level metadata. Ends with
    /// a newline.
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.clone();
        events.sort_by_key(|a| (a.0, a.1));
        let labels = self.processes.iter().map(|(pid, name)| {
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            )
        });
        let all: Vec<String> = labels
            .chain(events.into_iter().map(|(_, _, e)| e))
            .collect();
        let skipped: Vec<String> = self
            .skipped
            .iter()
            .map(|(src, why)| format!("\"{}\"", escape(&format!("{src}: {why}"))))
            .collect();
        let meta: Vec<String> = self
            .metadata
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .chain(std::iter::once(format!(
                "\"skipped_sources\":[{}]",
                skipped.join(",")
            )))
            .collect();
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{{}}}}}\n",
            all.join(",\n"),
            meta.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_serializes_spans() {
        let rec = TraceRecorder::new();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        rec.record("golden", 0, t0, &[]);
        rec.record("injection", 1, Instant::now(), &[("index", 7)]);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 0);
        let json = rec.to_chrome_json(&[("injections", "8".to_owned())]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"golden\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"index\":7"));
        assert!(json.contains("\"injections\":8"));
        assert!(json.contains("\"dropped_spans\":0"));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn spans_come_out_sorted_by_start_time() {
        let rec = TraceRecorder::new();
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        rec.record("late", 2, Instant::now(), &[]);
        rec.record("early", 1, early, &[]);
        let json = rec.to_chrome_json(&[]);
        let early_pos = json.find("\"early\"").unwrap();
        let late_pos = json.find("\"late\"").unwrap();
        assert!(early_pos < late_pos, "{json}");
    }

    #[test]
    fn cap_counts_dropped_spans() {
        let rec = TraceRecorder::new();
        let t0 = Instant::now();
        for _ in 0..TRACE_SPAN_CAP + 3 {
            rec.record("x", 0, t0, &[]);
        }
        assert_eq!(rec.len(), TRACE_SPAN_CAP);
        assert_eq!(rec.dropped(), 3);
        assert!(rec.to_chrome_json(&[]).contains("\"dropped_spans\":3"));
    }

    #[test]
    fn dropped_spans_export_to_the_metrics_registry() {
        let rec = TraceRecorder::with_cap(2);
        let t0 = Instant::now();
        for _ in 0..7 {
            rec.record("x", 0, t0, &[]);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 5);
        let m = crate::metrics::MetricsRegistry::new();
        rec.export_dropped(&m);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("radcrit_trace_dropped_spans_total", &[]),
            Some(5)
        );
        assert!(snap
            .to_prometheus()
            .contains("radcrit_trace_dropped_spans_total 5\n"));
    }

    #[test]
    fn a_poisoned_span_buffer_still_records_and_serializes() {
        // A worker thread that panics while holding the span lock used
        // to poison the buffer and cascade the panic into every later
        // record()/len()/to_chrome_json(). The recorder now recovers
        // the guard: spans recorded before AND after the panic survive.
        let rec = std::sync::Arc::new(TraceRecorder::new());
        rec.record("before-panic", 0, Instant::now(), &[]);
        let poisoner = std::sync::Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.spans.lock().unwrap();
            panic!("worker panicked mid-record");
        })
        .join();
        assert!(rec.spans.is_poisoned(), "the panic must poison the lock");
        rec.record("after-panic", 1, Instant::now(), &[]);
        assert_eq!(rec.len(), 2);
        let json = rec.to_chrome_json(&[]);
        assert!(json.contains("\"before-panic\""), "{json}");
        assert!(json.contains("\"after-panic\""), "{json}");
    }

    #[test]
    fn a_context_tags_every_span_and_the_metadata() {
        let rec = TraceRecorder::new();
        rec.set_context(TraceContext {
            campaign_id: "sha256:abc".into(),
            shard: 3,
            parent_span: 3_001,
        });
        rec.record("golden", 0, Instant::now(), &[("index", 9)]);
        let json = rec.to_chrome_json(&[]);
        assert!(
            json.contains("\"index\":9,\"shard\":3,\"parent\":3001"),
            "{json}"
        );
        assert!(json.contains("\"campaign_id\":\"sha256:abc\""), "{json}");
        assert!(json.contains("\"parent_span\":3001"), "{json}");
        assert_eq!(rec.context().unwrap().shard, 3);
    }

    #[test]
    fn a_shared_epoch_offsets_timestamps() {
        let epoch = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        let rec = TraceRecorder::with_epoch(epoch);
        rec.record("late-start", 0, Instant::now(), &[]);
        let json = rec.to_chrome_json(&[]);
        let ts: u64 = json
            .split("\"ts\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(
            ts >= 5_000,
            "span must be offset from the shared epoch: {ts}"
        );
        assert_eq!(rec.epoch(), epoch);
    }

    fn worker_doc(ts: &[u64]) -> String {
        let events: Vec<String> = ts
            .iter()
            .map(|t| {
                format!(
                    "{{\"name\":\"injection\",\"cat\":\"radcrit\",\"ph\":\"X\",\
                     \"ts\":{t},\"dur\":10,\"pid\":1,\"tid\":2,\"args\":{{\"shard\":1}}}}"
                )
            })
            .collect();
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{}}}}\n",
            events.join(",\n")
        )
    }

    #[test]
    fn fleet_merge_rebases_and_labels_worker_tracks() {
        let mut fleet = FleetTrace::new();
        fleet.add_process(2, "worker 127.0.0.1:7121");
        fleet.add_process(3, "worker 127.0.0.1:7122");
        assert_eq!(
            fleet.add_trace(2, &worker_doc(&[100, 200]), 500).unwrap(),
            2
        );
        assert_eq!(fleet.add_trace(3, &worker_doc(&[100]), -50).unwrap(), 1);
        let json = fleet.to_chrome_json();
        assert!(
            json.contains("\"ts\":600,") && json.contains("\"ts\":700,"),
            "{json}"
        );
        assert!(json.contains("\"ts\":50,\"dur\":10,\"pid\":3"), "{json}");
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("worker 127.0.0.1:7121"), "{json}");
        assert!(json.contains("\"shard\":1"), "{json}");
        // The merged document itself parses as one JSON value.
        json::parse_line(json.trim()).unwrap();
    }

    #[test]
    fn fleet_merge_clamps_negative_rebased_timestamps() {
        let mut fleet = FleetTrace::new();
        fleet.add_trace(2, &worker_doc(&[100]), -10_000).unwrap();
        let json = fleet.to_chrome_json();
        assert!(json.contains("\"ts\":0,"), "{json}");
    }

    #[test]
    fn a_torn_worker_trace_is_skipped_without_dropping_the_fleet() {
        let whole = worker_doc(&[100, 200]);
        let torn = &whole[..whole.len() / 2];
        let mut fleet = FleetTrace::new();
        fleet.add_process(2, "worker a");
        fleet.add_trace(2, &whole, 0).unwrap();
        let err = fleet.add_trace(3, torn, 0).unwrap_err();
        fleet.skip("127.0.0.1:7199", &err);
        assert_eq!(fleet.span_count(), 2);
        let json = fleet.to_chrome_json();
        assert!(
            json.contains("\"skipped_sources\":[\"127.0.0.1:7199:"),
            "{json}"
        );
        assert!(json.contains("\"name\":\"injection\""), "{json}");
        json::parse_line(json.trim()).unwrap();
    }
}
