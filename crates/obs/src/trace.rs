//! Phase-timeline recording and Chrome trace-event export.
//!
//! A [`TraceRecorder`] collects complete wall-clock spans — golden
//! execution, per-injection umbrellas, engine execution, output
//! comparison — from the collector and every worker thread, and
//! serializes them to the Chrome trace-event JSON format that
//! `chrome://tracing` and Perfetto load directly. Timelines are pure
//! presentation: they carry wall-clock data and therefore never enter
//! the deterministic event stream; they live beside the metrics
//! registry as operational output.
//!
//! Timestamps are microseconds relative to the recorder's creation, so
//! a trace always starts near `ts = 0`. The span buffer is capped
//! ([`TRACE_SPAN_CAP`]); spans beyond the cap are counted in
//! `dropped_spans` (exported in the trace's top-level metadata) rather
//! than growing without bound on very long campaigns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::escape;

/// Maximum number of spans one recorder buffers before dropping.
pub const TRACE_SPAN_CAP: usize = 100_000;

/// One completed span on some thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceSpan {
    /// Phase name (`golden`, `injection`, `execute`, `compare`, …).
    name: String,
    /// Start, µs since the recorder's epoch.
    ts_us: u64,
    /// Duration in µs.
    dur_us: u64,
    /// Logical thread id (0 = collector, 1.. = workers).
    tid: u64,
    /// Extra key/value args rendered into the span's `args` object
    /// (values are unsigned integers — indices, counts).
    args: Vec<(String, u64)>,
}

/// Thread-safe recorder of completed phase spans.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    spans: Mutex<Vec<TraceSpan>>,
    dropped: AtomicU64,
    cap: usize,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates a recorder whose epoch (`ts = 0`) is now.
    pub fn new() -> Self {
        Self::with_cap(TRACE_SPAN_CAP)
    }

    /// Creates a recorder with a custom span cap (tests exercise the
    /// drop path without recording 100k spans).
    pub fn with_cap(cap: usize) -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
        }
    }

    /// Records a completed span that started at `started` and ends now.
    pub fn record(&self, name: &str, tid: u64, started: Instant, args: &[(&str, u64)]) {
        let ts_us = started
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros() as u64);
        let dur_us = started.elapsed().as_micros() as u64;
        let span = TraceSpan {
            name: name.to_owned(),
            ts_us,
            dur_us,
            tid,
            args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        };
        let mut spans = self.spans.lock().expect("trace lock");
        if spans.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(span);
        }
    }

    /// Exports the dropped-span count as
    /// `radcrit_trace_dropped_spans_total` so capped drops are visible
    /// on `/metrics`, not only in-process. Call once, at trace
    /// finalization (the counter is cumulative across calls).
    pub fn export_dropped(&self, metrics: &crate::metrics::MetricsRegistry) {
        metrics.counter_add("radcrit_trace_dropped_spans_total", &[], self.dropped());
    }

    /// Number of spans recorded (excludes dropped ones).
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace lock").len()
    }

    /// Whether no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped past [`TRACE_SPAN_CAP`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serializes the timeline as Chrome trace-event JSON: complete
    /// (`"ph":"X"`) events sorted by start time, one `pid`, the
    /// caller's `metadata` key/values under a top-level `"metadata"`
    /// object (numbers rendered verbatim). Ends with a newline.
    pub fn to_chrome_json(&self, metadata: &[(&str, String)]) -> String {
        let mut spans = self.spans.lock().expect("trace lock").clone();
        spans.sort_by_key(|s| (s.ts_us, s.tid));
        let events: Vec<String> = spans
            .iter()
            .map(|s| {
                let args: Vec<String> = s
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"radcrit\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    escape(&s.name),
                    s.ts_us,
                    s.dur_us,
                    s.tid,
                    args.join(",")
                )
            })
            .collect();
        let meta: Vec<String> = metadata
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect::<Vec<_>>()
            .into_iter()
            .chain(std::iter::once(format!(
                "\"dropped_spans\":{}",
                self.dropped()
            )))
            .collect();
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{{}}}}}\n",
            events.join(",\n"),
            meta.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_serializes_spans() {
        let rec = TraceRecorder::new();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        rec.record("golden", 0, t0, &[]);
        rec.record("injection", 1, Instant::now(), &[("index", 7)]);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 0);
        let json = rec.to_chrome_json(&[("injections", "8".to_owned())]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"golden\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"index\":7"));
        assert!(json.contains("\"injections\":8"));
        assert!(json.contains("\"dropped_spans\":0"));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn spans_come_out_sorted_by_start_time() {
        let rec = TraceRecorder::new();
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        rec.record("late", 2, Instant::now(), &[]);
        rec.record("early", 1, early, &[]);
        let json = rec.to_chrome_json(&[]);
        let early_pos = json.find("\"early\"").unwrap();
        let late_pos = json.find("\"late\"").unwrap();
        assert!(early_pos < late_pos, "{json}");
    }

    #[test]
    fn cap_counts_dropped_spans() {
        let rec = TraceRecorder::new();
        let t0 = Instant::now();
        for _ in 0..TRACE_SPAN_CAP + 3 {
            rec.record("x", 0, t0, &[]);
        }
        assert_eq!(rec.len(), TRACE_SPAN_CAP);
        assert_eq!(rec.dropped(), 3);
        assert!(rec.to_chrome_json(&[]).contains("\"dropped_spans\":3"));
    }

    #[test]
    fn dropped_spans_export_to_the_metrics_registry() {
        let rec = TraceRecorder::with_cap(2);
        let t0 = Instant::now();
        for _ in 0..7 {
            rec.record("x", 0, t0, &[]);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 5);
        let m = crate::metrics::MetricsRegistry::new();
        rec.export_dropped(&m);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("radcrit_trace_dropped_spans_total", &[]),
            Some(5)
        );
        assert!(snap
            .to_prometheus()
            .contains("radcrit_trace_dropped_spans_total 5\n"));
    }
}
