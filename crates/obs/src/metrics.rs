//! A lightweight metrics registry: counters, gauges and log2 histograms
//! with labels, exported as JSON or Prometheus text.
//!
//! The registry is `Sync` (internally locked) and designed for coarse
//! update granularity: hot loops should accumulate locally and flush
//! once per unit of work (the engine flushes once per run, the campaign
//! collector once per record), so the lock is never contended in an
//! inner loop. All exports iterate a `BTreeMap`, so snapshot text is
//! deterministic given the same observations.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::Log2Histogram;
use crate::json::{escape, fmt_f64};

/// One entry of the static metric reference: name, exposition kind and
/// help text. The table backs both the `# HELP` lines of
/// [`MetricsSnapshot::to_prometheus`] and the generated
/// `docs/METRICS.md`; a drift test asserts every name registered at
/// runtime appears here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricHelp {
    /// Metric base name, e.g. `radcrit_injections_total`.
    pub name: &'static str,
    /// Exposition kind: `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// One-line help text (no newlines).
    pub help: &'static str,
}

/// The static reference of every `radcrit_*` metric the workspace
/// registers, sorted by name.
pub const METRIC_REFERENCE: &[MetricHelp] = &[
    MetricHelp {
        name: "radcrit_alert_active",
        kind: "gauge",
        help: "Whether the alert rule named by the rule label is currently firing (1) or ok (0).",
    },
    MetricHelp {
        name: "radcrit_alerts_fired_total",
        kind: "counter",
        help: "Firing edges of the alert rule named by the rule label since the evaluator started.",
    },
    MetricHelp {
        name: "radcrit_bucket_advance_tiles_total",
        kind: "counter",
        help:
            "Golden tiles replayed while advancing warm bucket states to a strike's resume point.",
    },
    MetricHelp {
        name: "radcrit_bucket_forks_total",
        kind: "counter",
        help: "Per-strike executions forked off a warm bucket state.",
    },
    MetricHelp {
        name: "radcrit_bucket_restores_total",
        kind: "counter",
        help: "Warm-bucket snapshot restores performed by the batch scheduler.",
    },
    MetricHelp {
        name: "radcrit_campaign_outcomes_total",
        kind: "counter",
        help: "Finished injections by outcome label (masked, sdc, crash, hang).",
    },
    MetricHelp {
        name: "radcrit_campaign_replayed_total",
        kind: "counter",
        help: "Injection records replayed from a checkpoint on campaign resume.",
    },
    MetricHelp {
        name: "radcrit_campaign_watchdog_hangs_total",
        kind: "counter",
        help: "Injections the watchdog declared hung and synthesized a record for.",
    },
    MetricHelp {
        name: "radcrit_engine_forked_runs_total",
        kind: "counter",
        help: "Engine executions forked from a warm bucket state.",
    },
    MetricHelp {
        name: "radcrit_engine_phase_us",
        kind: "histogram",
        help: "Engine phase wall time in microseconds, by phase label (setup, tiles, flush).",
    },
    MetricHelp {
        name: "radcrit_engine_resumed_runs_total",
        kind: "counter",
        help: "Engine executions resumed from a golden-prefix snapshot.",
    },
    MetricHelp {
        name: "radcrit_engine_runs_total",
        kind: "counter",
        help: "Engine executions started, in any mode.",
    },
    MetricHelp {
        name: "radcrit_fabric_shards_completed_total",
        kind: "counter",
        help: "Shards whose full index range the coordinator has confirmed complete.",
    },
    MetricHelp {
        name: "radcrit_fabric_shards_dispatched_total",
        kind: "counter",
        help: "Shard jobs dispatched to workers by the coordinator (first assignments only).",
    },
    MetricHelp {
        name: "radcrit_fabric_shards_redispatched_total",
        kind: "counter",
        help: "Shard remainders re-dispatched to a surviving worker after a worker died.",
    },
    MetricHelp {
        name: "radcrit_fabric_workers_alive",
        kind: "gauge",
        help: "Registered workers currently passing the coordinator's heartbeat check.",
    },
    MetricHelp {
        name: "radcrit_golden_cache_bytes",
        kind: "gauge",
        help: "Bytes resident in the daemon's golden-output LRU cache.",
    },
    MetricHelp {
        name: "radcrit_golden_cache_entries",
        kind: "gauge",
        help: "Entries resident in the daemon's golden-output LRU cache.",
    },
    MetricHelp {
        name: "radcrit_golden_cache_hits_total",
        kind: "counter",
        help: "Golden computations served from the content-addressed cache.",
    },
    MetricHelp {
        name: "radcrit_golden_cache_misses_total",
        kind: "counter",
        help: "Golden computations that had to run because the cache missed.",
    },
    MetricHelp {
        name: "radcrit_injection_latency",
        kind: "histogram",
        help: "End-to-end wall latency of one injection in microseconds.",
    },
    MetricHelp {
        name: "radcrit_plan_tiles",
        kind: "gauge",
        help: "Tiles in the most recent dispatch plan.",
    },
    MetricHelp {
        name: "radcrit_plan_units",
        kind: "gauge",
        help: "Execution units in the most recent dispatch plan.",
    },
    MetricHelp {
        name: "radcrit_plan_wave_size",
        kind: "gauge",
        help: "Concurrent tile slots per wave in the most recent dispatch plan.",
    },
    MetricHelp {
        name: "radcrit_plan_waves",
        kind: "gauge",
        help: "Waves in the most recent dispatch plan.",
    },
    MetricHelp {
        name: "radcrit_queue_depth",
        kind: "gauge",
        help: "Jobs queued in the daemon, sampled at scrape time.",
    },
    MetricHelp {
        name: "radcrit_run_dead_strike_exits_total",
        kind: "counter",
        help:
            "Forked runs ended early because the strike's corruption died before reaching output.",
    },
    MetricHelp {
        name: "radcrit_serve_jobs_submitted_total",
        kind: "counter",
        help: "Jobs accepted into the daemon's queue.",
    },
    MetricHelp {
        name: "radcrit_serve_jobs_total",
        kind: "counter",
        help: "Served jobs reaching a terminal state, by state label (done, failed, cancelled).",
    },
    MetricHelp {
        name: "radcrit_serve_outstanding_jobs",
        kind: "gauge",
        help: "Jobs submitted but not yet terminal, sampled at scrape time.",
    },
    MetricHelp {
        name: "radcrit_serve_queue_depth",
        kind: "gauge",
        help: "Jobs queued in the daemon (alias of radcrit_queue_depth), sampled at scrape time.",
    },
    MetricHelp {
        name: "radcrit_shard_covered",
        kind: "gauge",
        help:
            "Injection indices of one shard the coordinator's merged stream covers, by shard label.",
    },
    MetricHelp {
        name: "radcrit_shard_events_total",
        kind: "counter",
        help: "Event-stream lines merged from one shard's tail, by shard label.",
    },
    MetricHelp {
        name: "radcrit_simd_isa",
        kind: "gauge",
        help: "Constant 1 under an isa label naming the active SIMD executor (scalar, avx2, neon).",
    },
    MetricHelp {
        name: "radcrit_snapshot_bytes",
        kind: "gauge",
        help: "Bytes held by the last run's golden-prefix snapshot set.",
    },
    MetricHelp {
        name: "radcrit_snapshot_skipped_tiles_total",
        kind: "counter",
        help: "Snapshot captures skipped because the per-run byte budget was exhausted.",
    },
    MetricHelp {
        name: "radcrit_trace_clock_offset_us",
        kind: "gauge",
        help: "Estimated worker-clock offset in microseconds (midpoint method over the best \
               heartbeat probe), by worker label.",
    },
    MetricHelp {
        name: "radcrit_trace_dropped_spans_total",
        kind: "counter",
        help: "Trace spans dropped past the recorder's buffer cap.",
    },
    MetricHelp {
        name: "radcrit_workers_busy",
        kind: "gauge",
        help: "Daemon worker threads currently executing a job, sampled at scrape time.",
    },
    MetricHelp {
        name: "radcrit_workers_idle",
        kind: "gauge",
        help: "Daemon worker threads currently idle, sampled at scrape time.",
    },
];

/// Looks up a metric's reference entry by base name.
pub fn help_for(name: &str) -> Option<&'static MetricHelp> {
    METRIC_REFERENCE
        .binary_search_by(|m| m.name.cmp(name))
        .ok()
        .map(|i| &METRIC_REFERENCE[i])
}

/// Escapes a help text for a `# HELP` line: backslash and newline, per
/// the Prometheus text exposition format.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// A metric key: base name plus rendered label set.
///
/// Labels are rendered at update time into their exposition form
/// (`{k="v",…}`), which makes the key cheap to order and compare.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `radcrit_injections_total`.
    pub name: String,
    /// Rendered label set, e.g. `{outcome="sdc"}`; empty for no labels.
    pub labels: String,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let rendered = if labels.is_empty() {
            String::new()
        } else {
            let inner = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            format!("{{{inner}}}")
        };
        MetricKey {
            name: name.to_owned(),
            labels: rendered,
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.name, self.labels)
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log2 histogram of microsecond durations (boxed: a histogram is an
    /// order of magnitude larger than the scalar variants).
    Histogram(Box<Log2Histogram>),
}

/// A thread-safe registry of named metrics.
///
/// # Examples
///
/// ```
/// use radcrit_obs::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.counter_add("radcrit_injections_total", &[("outcome", "sdc")], 1);
/// m.gauge_set("radcrit_sigma_total", &[], 0.5);
/// let snap = m.snapshot();
/// assert_eq!(snap.counter("radcrit_injections_total", &[("outcome", "sdc")]), Some(1));
/// assert!(snap.to_prometheus().contains("radcrit_injections_total{outcome=\"sdc\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to a counter, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(MetricKey::new(name, labels))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            other => *other = Metric::Counter(v),
        }
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut map = self.inner.lock().expect("metrics lock");
        map.insert(MetricKey::new(name, labels), Metric::Gauge(v));
    }

    /// Records one duration into a histogram, creating it first.
    pub fn observe_duration(&self, name: &str, labels: &[(&str, &str)], d: Duration) {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.record(d),
            other => {
                let mut h = Log2Histogram::new();
                h.record(d);
                *other = Metric::Histogram(Box::new(h));
            }
        }
    }

    /// Merges a locally accumulated histogram into a registry histogram —
    /// the flush half of the accumulate-locally pattern.
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, &str)], h: &Log2Histogram) {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(existing) => existing.merge(h),
            other => *other = Metric::Histogram(Box::new(h.clone())),
        }
    }

    /// Freezes the current state into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.inner.lock().expect("metrics lock").clone(),
        }
    }

    /// Folds a whole snapshot into this registry: counters add,
    /// histograms merge, gauges take the snapshot's value (last write
    /// wins, as everywhere else). This is how a long-running service
    /// aggregates per-job registries into one daemon-wide registry
    /// without sharing locks across job lifetimes.
    pub fn merge_snapshot(&self, snapshot: &MetricsSnapshot) {
        let mut map = self.inner.lock().expect("metrics lock");
        for (key, metric) in &snapshot.entries {
            match metric {
                Metric::Counter(v) => match map.entry(key.clone()).or_insert(Metric::Counter(0)) {
                    Metric::Counter(c) => *c += v,
                    other => *other = Metric::Counter(*v),
                },
                Metric::Gauge(g) => {
                    map.insert(key.clone(), Metric::Gauge(*g));
                }
                Metric::Histogram(h) => {
                    match map
                        .entry(key.clone())
                        .or_insert_with(|| Metric::Histogram(Box::default()))
                    {
                        Metric::Histogram(existing) => existing.merge(h),
                        other => *other = Metric::Histogram(h.clone()),
                    }
                }
            }
        }
    }

    /// [`MetricsRegistry::merge_snapshot`], with an extra label appended
    /// to every merged key — how a coordinator folds per-shard or
    /// per-worker snapshots into one registry without their series
    /// colliding (e.g. `("shard", "2")` keeps two workers'
    /// `radcrit_campaign_outcomes_total` apart).
    pub fn merge_snapshot_labelled(&self, snapshot: &MetricsSnapshot, extra: (&str, &str)) {
        let rendered = format!("{}=\"{}\"", extra.0, escape(extra.1));
        let relabelled = MetricsSnapshot {
            entries: snapshot
                .entries
                .iter()
                .map(|(key, metric)| {
                    (
                        MetricKey {
                            name: key.name.clone(),
                            labels: merge_labels(&key.labels, &rendered),
                        },
                        metric.clone(),
                    )
                })
                .collect(),
        };
        self.merge_snapshot(&relabelled);
    }
}

/// An immutable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<MetricKey, Metric>,
}

impl MetricsSnapshot {
    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads a counter value back (tests, report rendering).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Reads a gauge value back.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Reads a histogram back.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Log2Histogram> {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(key, metric)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.entries.iter()
    }

    /// Renders the snapshot as a single JSON object (one line).
    ///
    /// Counters and gauges map key → value; histograms expand into
    /// `{count, sum_us, underflow, overflow, buckets: [[lo_us, n], …]}`.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, metric) in &self.entries {
            let k = escape(&key.to_string());
            match metric {
                Metric::Counter(c) => counters.push(format!("\"{k}\":{c}")),
                Metric::Gauge(g) => gauges.push(format!("\"{k}\":{}", fmt_f64(*g))),
                Metric::Histogram(h) => {
                    let buckets = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(lo, n)| format!("[{},{n}]", lo.as_micros()))
                        .collect::<Vec<_>>()
                        .join(",");
                    histograms.push(format!(
                        "\"{k}\":{{\"count\":{},\"sum_us\":{},\"underflow\":{},\
                         \"overflow\":{},\"buckets\":[{buckets}]}}",
                        h.count(),
                        h.sum_micros(),
                        h.underflow(),
                        h.overflow(),
                    ));
                }
            }
        }
        format!(
            "{{\"radcrit_metrics\":1,\"counters\":{{{}}},\"gauges\":{{{}}},\
             \"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(","),
        )
    }

    /// Parses the scalar half of a [`MetricsSnapshot::to_json`] line
    /// back into a snapshot: counters and gauges round-trip exactly;
    /// histograms are *not* reconstructed (their bucket encoding is
    /// lossy about the underlying `Log2Histogram`) and are skipped.
    /// This is what lets a coordinator fold a remote daemon's `/metrics`
    /// JSON into its own registry.
    ///
    /// # Errors
    ///
    /// A line that is not a `radcrit_metrics` v1 object, or counter /
    /// gauge values of the wrong type.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let parsed = crate::json::parse_line(line)?;
        let top = crate::json::as_obj(&parsed)?;
        if crate::json::get_usize(top, "radcrit_metrics") != Ok(1) {
            return Err("not a radcrit_metrics v1 snapshot".into());
        }
        // Keys were rendered as `name{k="v",…}`: split at the first
        // brace; the label part round-trips verbatim.
        let split_key = |k: &str| -> MetricKey {
            match k.find('{') {
                Some(at) => MetricKey {
                    name: k[..at].to_owned(),
                    labels: k[at..].to_owned(),
                },
                None => MetricKey {
                    name: k.to_owned(),
                    labels: String::new(),
                },
            }
        };
        let mut entries = BTreeMap::new();
        for (k, v) in crate::json::as_obj(crate::json::get(top, "counters")?)? {
            match v {
                crate::json::Json::Num(n) => {
                    let c = n.parse().map_err(|_| format!("counter {k:?}: {n:?}"))?;
                    entries.insert(split_key(k), Metric::Counter(c));
                }
                _ => return Err(format!("counter {k:?} is not a number")),
            }
        }
        for (k, v) in crate::json::as_obj(crate::json::get(top, "gauges")?)? {
            match v {
                crate::json::Json::Num(n) => {
                    let g = n.parse().map_err(|_| format!("gauge {k:?}: {n:?}"))?;
                    entries.insert(split_key(k), Metric::Gauge(g));
                }
                _ => return Err(format!("gauge {k:?} is not a number")),
            }
        }
        Ok(MetricsSnapshot { entries })
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms emit `_bucket{le=…}` (cumulative, µs), `_sum` (µs) and
    /// `_count` series; the explicit underflow/overflow counts are
    /// exported as companion `_underflow`/`_overflow` counters. Names
    /// present in [`METRIC_REFERENCE`] get a `# HELP` line immediately
    /// before their `# TYPE` line.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<(String, &'static str)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
            if last_typed
                .as_ref()
                .is_none_or(|(n, k)| n != name || *k != kind)
            {
                if let Some(h) = help_for(name) {
                    out.push_str(&format!("# HELP {name} {}\n", escape_help(h.help)));
                }
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_typed = Some((name.to_owned(), kind));
            }
        };
        for (key, metric) in &self.entries {
            match metric {
                Metric::Counter(c) => {
                    type_line(&mut out, &key.name, "counter");
                    out.push_str(&format!("{}{} {c}\n", key.name, key.labels));
                }
                Metric::Gauge(g) => {
                    type_line(&mut out, &key.name, "gauge");
                    out.push_str(&format!("{}{} {}\n", key.name, key.labels, prom_f64(*g)));
                }
                Metric::Histogram(h) => {
                    type_line(&mut out, &key.name, "histogram");
                    for (le, cum) in h.cumulative_buckets() {
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            key.name,
                            merge_labels(&key.labels, &format!("le=\"{le}\""))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        key.name,
                        merge_labels(&key.labels, "le=\"+Inf\""),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        key.name,
                        key.labels,
                        h.sum_micros()
                    ));
                    out.push_str(&format!("{}_count{} {}\n", key.name, key.labels, h.count()));
                    out.push_str(&format!(
                        "{}_underflow{} {}\n",
                        key.name,
                        key.labels,
                        h.underflow()
                    ));
                    out.push_str(&format!(
                        "{}_overflow{} {}\n",
                        key.name,
                        key.labels,
                        h.overflow()
                    ));
                }
            }
        }
        out
    }
}

/// Merges an extra label into an already-rendered label set.
fn merge_labels(rendered: &str, extra: &str) -> String {
    if rendered.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &rendered[..rendered.len() - 1])
    }
}

/// Prometheus float rendering: `+Inf`, `-Inf`, `NaN` spellings.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        fmt_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.counter_add("x_total", &[("site", "fpu")], 2);
        m.counter_add("x_total", &[("site", "fpu")], 3);
        m.counter_add("x_total", &[("site", "l2")], 1);
        let s = m.snapshot();
        assert_eq!(s.counter("x_total", &[("site", "fpu")]), Some(5));
        assert_eq!(s.counter("x_total", &[("site", "l2")]), Some(1));
        assert_eq!(s.counter("x_total", &[]), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.gauge_set("g", &[], 1.0);
        m.gauge_set("g", &[], 2.5);
        assert_eq!(m.snapshot().gauge("g", &[]), Some(2.5));
    }

    #[test]
    fn histogram_observation_and_merge() {
        let m = MetricsRegistry::new();
        m.observe_duration("lat_us", &[], Duration::from_micros(10));
        let mut local = Log2Histogram::new();
        local.record(Duration::from_micros(100));
        local.record(Duration::from_nanos(1));
        m.merge_histogram("lat_us", &[], &local);
        let s = m.snapshot();
        let h = s.histogram("lat_us", &[]).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn prometheus_text_is_line_formatted() {
        let m = MetricsRegistry::new();
        m.counter_add("radcrit_runs_total", &[], 4);
        m.gauge_set("radcrit_sigma", &[], f64::INFINITY);
        m.observe_duration(
            "radcrit_lat_us",
            &[("phase", "tiles")],
            Duration::from_micros(3),
        );
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE radcrit_runs_total counter\n"));
        assert!(text.contains("radcrit_runs_total 4\n"));
        assert!(text.contains("radcrit_sigma +Inf\n"));
        assert!(text.contains("radcrit_lat_us_bucket{phase=\"tiles\",le=\"4\"} 1\n"));
        assert!(text.contains("radcrit_lat_us_bucket{phase=\"tiles\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("radcrit_lat_us_count{phase=\"tiles\"} 1\n"));
        // Every line is `name{labels} value` or a `# HELP`/`# TYPE`
        // comment.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ")
                    || line.starts_with("# HELP ")
                    || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn referenced_names_get_help_lines_before_type_lines() {
        let m = MetricsRegistry::new();
        m.counter_add("radcrit_engine_runs_total", &[], 1);
        m.counter_add("unreferenced_total", &[], 1);
        let text = m.snapshot().to_prometheus();
        let help = text.find("# HELP radcrit_engine_runs_total ").unwrap();
        let typed = text
            .find("# TYPE radcrit_engine_runs_total counter")
            .unwrap();
        assert!(help < typed, "HELP must precede TYPE: {text}");
        assert!(!text.contains("# HELP unreferenced_total"), "{text}");
    }

    #[test]
    fn metric_reference_is_sorted_and_unique() {
        for pair in METRIC_REFERENCE.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "reference must stay sorted: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
        for m in METRIC_REFERENCE {
            assert!(
                matches!(m.kind, "counter" | "gauge" | "histogram"),
                "{}",
                m.name
            );
            assert!(!m.help.is_empty() && !m.help.contains('\n'), "{}", m.name);
            assert_eq!(help_for(m.name), Some(m));
        }
    }

    #[test]
    fn json_snapshot_parses_back() {
        let m = MetricsRegistry::new();
        m.counter_add("c_total", &[("k", "v")], 7);
        m.gauge_set("g", &[], 1.25);
        m.observe_duration("h_us", &[], Duration::from_micros(9));
        let json = m.snapshot().to_json();
        let v = crate::json::parse_line(&json).unwrap();
        let obj = crate::json::as_obj(&v).unwrap();
        assert_eq!(crate::json::get_usize(obj, "radcrit_metrics").unwrap(), 1);
        let counters = crate::json::as_obj(crate::json::get(obj, "counters").unwrap()).unwrap();
        assert_eq!(
            crate::json::get_usize(counters, "c_total{k=\"v\"}").unwrap(),
            7
        );
    }

    #[test]
    fn merge_snapshot_folds_per_job_registries() {
        let job_a = MetricsRegistry::new();
        job_a.counter_add("jobs_total", &[], 1);
        job_a.counter_add("outcomes_total", &[("outcome", "sdc")], 3);
        job_a.gauge_set("last_sigma", &[], 1.0);
        job_a.observe_duration("lat_us", &[], Duration::from_micros(10));

        let job_b = MetricsRegistry::new();
        job_b.counter_add("jobs_total", &[], 1);
        job_b.gauge_set("last_sigma", &[], 2.0);
        job_b.observe_duration("lat_us", &[], Duration::from_micros(100));

        let daemon = MetricsRegistry::new();
        daemon.merge_snapshot(&job_a.snapshot());
        daemon.merge_snapshot(&job_b.snapshot());
        let s = daemon.snapshot();
        assert_eq!(s.counter("jobs_total", &[]), Some(2), "counters add");
        assert_eq!(s.counter("outcomes_total", &[("outcome", "sdc")]), Some(3));
        assert_eq!(s.gauge("last_sigma", &[]), Some(2.0), "last write wins");
        assert_eq!(s.histogram("lat_us", &[]).unwrap().count(), 2);
    }

    #[test]
    fn labelled_merge_keeps_per_shard_series_apart() {
        let worker_a = MetricsRegistry::new();
        worker_a.counter_add("outcomes_total", &[("outcome", "sdc")], 3);
        worker_a.gauge_set("sigma", &[], 1.0);
        let worker_b = MetricsRegistry::new();
        worker_b.counter_add("outcomes_total", &[("outcome", "sdc")], 5);

        let coord = MetricsRegistry::new();
        coord.merge_snapshot_labelled(&worker_a.snapshot(), ("shard", "0"));
        coord.merge_snapshot_labelled(&worker_b.snapshot(), ("shard", "1"));
        let s = coord.snapshot();
        assert_eq!(
            s.counter("outcomes_total", &[("outcome", "sdc"), ("shard", "0")]),
            Some(3)
        );
        assert_eq!(
            s.counter("outcomes_total", &[("outcome", "sdc"), ("shard", "1")]),
            Some(5)
        );
        assert_eq!(s.gauge("sigma", &[("shard", "0")]), Some(1.0));
        assert_eq!(
            s.counter("outcomes_total", &[("outcome", "sdc")]),
            None,
            "unlabelled series must not exist"
        );
    }

    #[test]
    fn scalar_snapshot_round_trips_through_json() {
        let m = MetricsRegistry::new();
        m.counter_add("c_total", &[("k", "v")], 7);
        m.counter_add("plain_total", &[], 2);
        m.gauge_set("g", &[], 1.25);
        m.observe_duration("h_us", &[], Duration::from_micros(9));
        let parsed = MetricsSnapshot::from_json(&m.snapshot().to_json()).unwrap();
        assert_eq!(parsed.counter("c_total", &[("k", "v")]), Some(7));
        assert_eq!(parsed.counter("plain_total", &[]), Some(2));
        assert_eq!(parsed.gauge("g", &[]), Some(1.25));
        assert!(
            parsed.histogram("h_us", &[]).is_none(),
            "histograms are deliberately not reconstructed"
        );
        assert!(MetricsSnapshot::from_json("{\"nope\":1}").is_err());
    }

    #[test]
    fn snapshot_is_deterministic_order() {
        let m = MetricsRegistry::new();
        m.counter_add("b_total", &[], 1);
        m.counter_add("a_total", &[], 1);
        let text = m.snapshot().to_prometheus();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "BTreeMap ordering must sort names");
    }
}
