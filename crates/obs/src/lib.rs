//! # radcrit-obs
//!
//! The observability layer of the radcrit stack: everything the pipeline
//! needs to explain *why* an injection produced its outcome and *how* a
//! run is going operationally, without perturbing the science.
//!
//! Three ideas, three modules:
//!
//! * [`metrics`] — a lightweight registry of counters, gauges and
//!   [`hist::Log2Histogram`]s with JSON and Prometheus-text snapshot
//!   export. Operational data (latencies, throughput, phase timings) is
//!   allowed to vary run to run and lives here, never in the event
//!   stream.
//! * [`event`] + [`writer`] — a structured span/event API
//!   ([`event::Span::enter`] with key/value fields, zero-cost when
//!   disabled) emitting a JSONL stream that covers the full injection
//!   lifecycle: dispatch → site selection → bit flip → tile execution →
//!   output diff → spatial classification. Events carry only *logical*
//!   data (indices, sites, bits, classes — no wall-clock), so a
//!   fixed-seed campaign emits a byte-identical stream on every run; the
//!   [`writer::EventWriter`] sequences per-injection blocks by index and
//!   skips already-emitted indices on resume.
//! * [`provenance`] — the joined fault-provenance record: strike (site,
//!   tile, bit) + execution (victim/touched tiles) + result (mismatch
//!   count, [`radcrit_core::locality::SpatialClass`], mean relative
//!   error), and the per-site breakdown that answers "which fault sites
//!   cause `Square` corruption" directly.
//!
//! Two later additions build on those:
//!
//! * [`analytics`] — the live fold: a
//!   [`analytics::CriticalityAggregator`] turns the event stream back
//!   into rolling criticality aggregates (outcome counts, FIT with
//!   Poisson confidence intervals, spatial-class breakdowns, MRE and
//!   corrupted-element histograms) *while the campaign runs*, with the
//!   invariant that folding a finished stream reproduces the campaign
//!   summary exactly.
//! * [`trace`] — wall-clock phase timelines ([`trace::TraceRecorder`])
//!   exported as Chrome trace-event JSON for `chrome://tracing` /
//!   Perfetto.
//! * [`alerts`] — a campaign health rules evaluator
//!   ([`alerts::AlertEngine`]): typed alerts (worker-flapping,
//!   redispatch-storm, shard-stalled, throughput-below-baseline,
//!   queue-saturated, FIT-CI-stalled) with severities, firing/resolved
//!   edges as structured JSONL log lines, and
//!   `radcrit_alert_*` metric export; time is injected so every rule
//!   is deterministic under test.
//! * [`profile`] — a hierarchical scoped-phase profiler
//!   ([`profile::PhaseId`] registry, per-thread lock-free accumulators,
//!   merged [`profile::ProfileTree`]s) with JSON and collapsed-stack
//!   flamegraph export; zero-cost when disabled, never in the event
//!   stream.
//!
//! [`json`] is the shared minimal JSON codec (also used by the campaign
//! checkpoint format): floats use Rust's shortest round-trip formatting,
//! so `inf`/`NaN` appear verbatim — a deliberate deviation from strict
//! JSON that keeps infinite relative errors lossless.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod alerts;
pub mod analytics;
pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod provenance;
pub mod trace;
pub mod writer;

pub use alerts::{AlertConfig, AlertEngine, AlertEvent, AlertRule, HealthSample, Severity};
pub use analytics::{AnalyticSample, CriticalityAggregator};
pub use event::{Event, EventBuffer, FieldValue, Span};
pub use hist::Log2Histogram;
pub use metrics::{MetricHelp, MetricsRegistry, MetricsSnapshot};
pub use profile::{PhaseId, ProfileCollector, ProfileNode, ProfileTree};
pub use provenance::{ProvenanceBreakdown, ProvenanceRecord};
pub use trace::{FleetTrace, TraceContext, TraceRecorder};
pub use writer::EventWriter;
