//! Live campaign analytics: an incremental fold of the event stream
//! into the same criticality aggregates a finished campaign reports.
//!
//! The [`CriticalityAggregator`] consumes terminal per-injection events
//! (`provenance` and `replay` markers) plus the `run_begin` header and
//! maintains rolling outcome counts, FIT point estimates with Poisson
//! 95 % confidence intervals, spatial-class breakdowns (raw and
//! tolerance-filtered), MRE / corrupted-element [`Log2Histogram`]s, the
//! scatter series and per-site SDC counts — everything
//! `CampaignSummary` derives after the fact, but available while the
//! campaign is still running.
//!
//! Two properties make it safe to drive dashboards and progress lines
//! from the same fold that validates the final summary:
//!
//! * **Idempotent per index** — each injection index is folded at most
//!   once ([`CriticalityAggregator::fold_sample`] ignores repeats), so
//!   replaying a prefix of the stream and then the whole stream again
//!   (exactly what an SSE client resuming via `Last-Event-ID`, or a
//!   kill → resume cycle, produces) yields the same aggregate as one
//!   clean pass.
//! * **Summary-exact** — folding a finished campaign's stream
//!   reproduces `CampaignSummary` field for field: the FIT arithmetic
//!   below is kept byte-for-byte identical to
//!   `CampaignSummary::from_result`, and the campaign crate asserts
//!   the invariant against every integration fixture.

use std::collections::{BTreeMap, HashSet};

use radcrit_core::fit::{FitBreakdown, FitRate};
use radcrit_core::locality::SpatialClass;
use radcrit_core::stats::poisson_ci;

use crate::event::{Event, FieldValue};
use crate::hist::Log2Histogram;
use crate::json::{escape, fmt_f64};
use crate::provenance::ProvenanceRecord;

/// The analytic essence of one terminal injection event — the subset of
/// a [`ProvenanceRecord`] the aggregator folds, also constructible from
/// a campaign's in-memory record so the runner's live progress line and
/// the offline event-stream fold share a single accumulation path.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticSample {
    /// Injection index (the idempotence key).
    pub index: u64,
    /// Fault-site name.
    pub site: String,
    /// Outcome tag: `MASKED`, `SDC`, `CRASH` or `HANG`.
    pub outcome: String,
    /// Mismatched output elements.
    pub mismatches: u64,
    /// Spatial class of the corruption.
    pub class: SpatialClass,
    /// Mean relative error, when an SDC produced one.
    pub mre: Option<f64>,
    /// Whether the SDC survives the tolerance filter.
    pub critical: bool,
    /// Filtered spatial class, when `critical`.
    pub fclass: Option<SpatialClass>,
}

impl AnalyticSample {
    /// Extracts the sample carried by a terminal event (`provenance` or
    /// `replay`), or `None` for any other event kind.
    ///
    /// `replay` markers written before the analytics layer existed lack
    /// the mismatch fields; they decode with zeroed criticality rather
    /// than failing, so old streams still fold (their outcome counts
    /// stay exact, only SDC detail degrades).
    ///
    /// # Errors
    ///
    /// A terminal event with a missing index or ill-typed fields.
    pub fn from_event(event: &Event) -> Result<Option<Self>, String> {
        match event.kind.as_str() {
            "provenance" => {
                let rec = ProvenanceRecord::from_event(event)?;
                Ok(Some(AnalyticSample {
                    index: rec.index,
                    site: rec.site,
                    outcome: rec.outcome,
                    mismatches: rec.mismatches,
                    class: rec.class,
                    mre: rec.mre,
                    critical: rec.critical,
                    fclass: rec.fclass,
                }))
            }
            "replay" => {
                let index = event.index.ok_or("replay event without index")?;
                let str_field = |k: &str| -> Result<String, String> {
                    match event.field(k) {
                        Some(FieldValue::Str(s)) => Ok(s.clone()),
                        _ => Err(format!("missing or ill-typed field {k:?}")),
                    }
                };
                let class = match event.field("class") {
                    Some(FieldValue::Str(s)) => s
                        .parse::<SpatialClass>()
                        .map_err(|e| format!("bad spatial class {s:?}: {e}"))?,
                    _ => SpatialClass::None,
                };
                let fclass = match event.field("fclass") {
                    Some(FieldValue::Str(s)) => Some(
                        s.parse::<SpatialClass>()
                            .map_err(|e| format!("bad filtered spatial class {s:?}: {e}"))?,
                    ),
                    _ => None,
                };
                Ok(Some(AnalyticSample {
                    index,
                    site: str_field("site")?,
                    outcome: str_field("outcome")?,
                    mismatches: match event.field("mismatches") {
                        Some(FieldValue::U64(v)) => *v,
                        _ => 0,
                    },
                    class,
                    mre: match event.field("mre") {
                        Some(FieldValue::F64(v)) => Some(*v),
                        Some(FieldValue::U64(v)) => Some(*v as f64),
                        _ => None,
                    },
                    critical: matches!(event.field("critical"), Some(FieldValue::Bool(true))),
                    fclass,
                }))
            }
            _ => Ok(None),
        }
    }
}

/// Incremental fold of a campaign event stream into rolling criticality
/// aggregates. See the module docs for the idempotence and
/// summary-exactness guarantees.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalityAggregator {
    /// Kernel name from `run_begin` (empty until the header is folded).
    kernel: String,
    /// Input-size label from `run_begin`.
    input: String,
    /// Device name from `run_begin`.
    device: String,
    /// Declared campaign size from `run_begin` (0 when unknown).
    declared_injections: u64,
    /// Total cross-section from `run_begin` — the FIT scale factor.
    sigma_total: f64,
    masked: u64,
    sdc: u64,
    critical_sdc: u64,
    crash: u64,
    hang: u64,
    all_counts: BTreeMap<SpatialClass, u64>,
    filt_counts: BTreeMap<SpatialClass, u64>,
    /// Scatter points keyed by injection index: resumed streams emit
    /// indices out of sorted order, and the summary's scatter series is
    /// index-ordered.
    scatter: BTreeMap<u64, (u64, f64)>,
    sdc_by_site: BTreeMap<String, u64>,
    /// Indices already folded — the idempotence set.
    seen: HashSet<u64>,
    /// Injections absorbed via [`CriticalityAggregator::merge`], whose
    /// indices cannot join `seen` (they collide across jobs).
    merged_injections: u64,
    /// Histogram of SDC mean relative errors (percent, magnitude ⌊v⌋).
    mre_hist: Log2Histogram,
    /// Same, restricted to SDCs surviving the tolerance filter.
    mre_filtered_hist: Log2Histogram,
    /// Histogram of corrupted-element counts per SDC.
    elems_hist: Log2Histogram,
    /// Whether a `run_end` trailer has been folded.
    finished: bool,
}

impl CriticalityAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-seeds the campaign context normally learned from the
    /// `run_begin` header — used by the runner, which knows its own
    /// campaign before any event exists.
    pub fn with_context(
        kernel: &str,
        input: &str,
        device: &str,
        injections: u64,
        sigma_total: f64,
    ) -> Self {
        CriticalityAggregator {
            kernel: kernel.to_owned(),
            input: input.to_owned(),
            device: device.to_owned(),
            declared_injections: injections,
            sigma_total,
            ..Self::default()
        }
    }

    /// Folds one event stream line; unparseable lines (a torn tail) are
    /// ignored, exactly as the [`crate::writer::EventWriter`] tolerates
    /// them on resume.
    ///
    /// # Errors
    ///
    /// A parseable terminal event with ill-typed fields.
    pub fn fold_line(&mut self, line: &str) -> Result<(), String> {
        match crate::event::parse_event_line(line) {
            Ok(event) => self.fold_event(&event),
            Err(_) => Ok(()),
        }
    }

    /// Folds one event: `run_begin` sets the campaign context,
    /// `provenance`/`replay` fold a sample, `run_end` marks the stream
    /// finished, everything else is ignored.
    ///
    /// # Errors
    ///
    /// As [`AnalyticSample::from_event`].
    pub fn fold_event(&mut self, event: &Event) -> Result<(), String> {
        match event.kind.as_str() {
            "run_begin" => {
                let str_field = |k: &str| match event.field(k) {
                    Some(FieldValue::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                if let Some(kernel) = str_field("kernel") {
                    self.kernel = kernel;
                }
                if let Some(input) = str_field("input") {
                    self.input = input;
                }
                if let Some(device) = str_field("device") {
                    self.device = device;
                }
                if let Some(FieldValue::U64(n)) = event.field("injections") {
                    self.declared_injections = *n;
                }
                match event.field("sigma") {
                    Some(FieldValue::F64(v)) => self.sigma_total = *v,
                    Some(FieldValue::U64(v)) => self.sigma_total = *v as f64,
                    _ => {}
                }
                Ok(())
            }
            "run_end" => {
                self.finished = true;
                Ok(())
            }
            _ => {
                if let Some(sample) = AnalyticSample::from_event(event)? {
                    self.fold_sample(&sample);
                }
                Ok(())
            }
        }
    }

    /// Folds one terminal sample. Repeats of an already-seen index are
    /// ignored, which is what makes prefix-then-resume folds equal the
    /// one-shot fold.
    pub fn fold_sample(&mut self, sample: &AnalyticSample) {
        if !self.seen.insert(sample.index) {
            return;
        }
        match sample.outcome.as_str() {
            "MASKED" => self.masked += 1,
            "CRASH" => self.crash += 1,
            "HANG" => self.hang += 1,
            "SDC" => {
                self.sdc += 1;
                *self.sdc_by_site.entry(sample.site.clone()).or_default() += 1;
                *self.all_counts.entry(sample.class).or_default() += 1;
                if sample.critical {
                    self.critical_sdc += 1;
                    let fclass = sample.fclass.unwrap_or(sample.class);
                    *self.filt_counts.entry(fclass).or_default() += 1;
                }
                let mre = sample.mre.unwrap_or(f64::INFINITY);
                self.scatter.insert(sample.index, (sample.mismatches, mre));
                record_magnitude(&mut self.elems_hist, sample.mismatches as f64);
                record_magnitude(&mut self.mre_hist, mre);
                if sample.critical {
                    record_magnitude(&mut self.mre_filtered_hist, mre);
                }
            }
            _ => {} // unknown tag: counted nowhere, by design
        }
    }

    /// Merges `other` into `self` for the daemon-wide rollup: counts,
    /// class breakdowns, site table and histograms add up; the scatter
    /// series and idempotence set are per-campaign (indices collide
    /// across jobs) and are deliberately not merged; context fields are
    /// kept when equal and blanked when jobs disagree.
    pub fn merge(&mut self, other: &CriticalityAggregator) {
        let keep = |mine: &mut String, theirs: &str| {
            if theirs.is_empty() {
                // nothing to learn from a context-less aggregator
            } else if mine.is_empty() {
                *mine = theirs.to_owned();
            } else if mine != theirs {
                *mine = "mixed".to_owned();
            }
        };
        keep(&mut self.kernel, &other.kernel);
        keep(&mut self.input, &other.input);
        keep(&mut self.device, &other.device);
        self.declared_injections += other.declared_injections;
        // Cross-sections add across campaigns; the rolled-up FIT is a
        // coarse fleet-level figure, not a per-kernel estimate.
        self.sigma_total += other.sigma_total;
        self.merged_injections += other.injections();
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.critical_sdc += other.critical_sdc;
        self.crash += other.crash;
        self.hang += other.hang;
        for (&class, &n) in &other.all_counts {
            *self.all_counts.entry(class).or_default() += n;
        }
        for (&class, &n) in &other.filt_counts {
            *self.filt_counts.entry(class).or_default() += n;
        }
        for (site, &n) in &other.sdc_by_site {
            *self.sdc_by_site.entry(site.clone()).or_default() += n;
        }
        self.mre_hist.merge(&other.mre_hist);
        self.mre_filtered_hist.merge(&other.mre_filtered_hist);
        self.elems_hist.merge(&other.elems_hist);
    }

    /// Injections folded so far (including merged-in campaigns).
    pub fn injections(&self) -> u64 {
        self.seen.len() as u64 + self.merged_injections
    }

    /// Declared campaign size from the `run_begin` header (0 unknown).
    pub fn declared_injections(&self) -> u64 {
        self.declared_injections
    }

    /// Masked outcomes folded so far.
    pub fn masked(&self) -> u64 {
        self.masked
    }

    /// SDC outcomes folded so far (before the tolerance filter).
    pub fn sdc(&self) -> u64 {
        self.sdc
    }

    /// SDCs surviving the tolerance filter.
    pub fn critical_sdc(&self) -> u64 {
        self.critical_sdc
    }

    /// Crash outcomes folded so far.
    pub fn crash(&self) -> u64 {
        self.crash
    }

    /// Hang outcomes folded so far.
    pub fn hang(&self) -> u64 {
        self.hang
    }

    /// Total cross-section (the FIT scale), from `run_begin`.
    pub fn sigma_total(&self) -> f64 {
        self.sigma_total
    }

    /// Kernel name from the stream header.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Input-size label from the stream header.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Device name from the stream header.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Whether a `run_end` trailer has been folded.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Scatter series in index order: (index, mismatches, mre).
    pub fn scatter(&self) -> impl Iterator<Item = (u64, u64, f64)> + '_ {
        self.scatter.iter().map(|(&i, &(n, mre))| (i, n, mre))
    }

    /// Per-site SDC counts.
    pub fn sdc_by_site(&self) -> &BTreeMap<String, u64> {
        &self.sdc_by_site
    }

    /// Histogram of SDC mean relative errors (log2-bucketed percent).
    pub fn mre_histogram(&self) -> &Log2Histogram {
        &self.mre_hist
    }

    /// MRE histogram restricted to tolerance-surviving SDCs.
    pub fn mre_filtered_histogram(&self) -> &Log2Histogram {
        &self.mre_filtered_hist
    }

    /// Histogram of corrupted-element counts per SDC.
    pub fn corrupted_elements_histogram(&self) -> &Log2Histogram {
        &self.elems_hist
    }

    /// The FIT rate of `count` events at the current sample size —
    /// the identical arithmetic `CampaignSummary` uses, so the folded
    /// breakdown matches the summary bit for bit.
    fn to_fit(&self, count: u64) -> FitRate {
        let injections = self.injections().max(1) as f64;
        FitRate::from_raw(count as f64 / injections * self.sigma_total)
    }

    /// FIT break-down by raw spatial class ("All" bars).
    pub fn fit_all(&self) -> FitBreakdown {
        self.all_counts
            .iter()
            .map(|(&class, &n)| (class, self.to_fit(n)))
            .collect()
    }

    /// FIT break-down by tolerance-filtered spatial class.
    pub fn fit_filtered(&self) -> FitBreakdown {
        self.filt_counts
            .iter()
            .map(|(&class, &n)| (class, self.to_fit(n)))
            .collect()
    }

    /// 95 % Poisson confidence interval on the "All" FIT total, in the
    /// same arbitrary units as [`CriticalityAggregator::fit_all`].
    pub fn fit_all_ci95(&self) -> (f64, f64) {
        let (lo, hi) = poisson_ci(self.sdc as usize, 0.95);
        let scale = self.sigma_total / self.injections().max(1) as f64;
        (lo * scale, hi * scale)
    }

    /// Width of the 95 % CI — the convergence indicator the progress
    /// line and dashboard track toward zero.
    pub fn fit_ci_width(&self) -> f64 {
        let (lo, hi) = self.fit_all_ci95();
        hi - lo
    }

    /// Renders the rolling aggregates as one deterministic JSON line
    /// (no trailing newline) — the body of the daemon's analytics
    /// endpoints.
    pub fn to_json(&self) -> String {
        let fit = |b: &FitBreakdown| {
            let fields: Vec<String> = b
                .iter()
                .map(|(class, rate)| {
                    format!(
                        "\"{}\":{}",
                        escape(&class.to_string()),
                        fmt_f64(rate.value())
                    )
                })
                .collect();
            format!("{{{}}}", fields.join(","))
        };
        let hist = |h: &Log2Histogram| {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(lo, n)| format!("[{},{}]", lo.as_micros(), n))
                .collect();
            format!(
                "{{\"count\":{},\"underflow\":{},\"overflow\":{},\"buckets\":[{}]}}",
                h.count(),
                h.underflow(),
                h.overflow(),
                buckets.join(",")
            )
        };
        let by_site: Vec<String> = self
            .sdc_by_site
            .iter()
            .map(|(site, n)| format!("\"{}\":{n}", escape(site)))
            .collect();
        let (ci_lo, ci_hi) = self.fit_all_ci95();
        format!(
            concat!(
                "{{\"radcrit_analytics\":1",
                ",\"kernel\":\"{}\",\"input\":\"{}\",\"device\":\"{}\"",
                ",\"injections\":{},\"declared_injections\":{},\"finished\":{}",
                ",\"masked\":{},\"sdc\":{},\"critical_sdc\":{},\"crash\":{},\"hang\":{}",
                ",\"sigma_total\":{}",
                ",\"fit_all\":{},\"fit_filtered\":{}",
                ",\"fit_all_total\":{},\"fit_filtered_total\":{}",
                ",\"fit_ci95\":[{},{}]",
                ",\"sdc_by_site\":{{{}}}",
                ",\"mre_hist\":{},\"mre_filtered_hist\":{},\"corrupted_elems_hist\":{}}}"
            ),
            escape(&self.kernel),
            escape(&self.input),
            escape(&self.device),
            self.injections(),
            self.declared_injections,
            self.finished,
            self.masked,
            self.sdc,
            self.critical_sdc,
            self.crash,
            self.hang,
            fmt_f64(self.sigma_total),
            fit(&self.fit_all()),
            fit(&self.fit_filtered()),
            fmt_f64(self.fit_all().total().value()),
            fmt_f64(self.fit_filtered().total().value()),
            fmt_f64(ci_lo),
            fmt_f64(ci_hi),
            by_site.join(","),
            hist(&self.mre_hist),
            hist(&self.mre_filtered_hist),
            hist(&self.elems_hist),
        )
    }

    /// Folds a whole events JSONL file.
    ///
    /// Only newline-terminated lines are folded — the same framing rule
    /// the SSE tailer applies — so a file caught mid-write (its final
    /// line torn, whether or not the fragment happens to parse as JSON)
    /// folds exactly like the stream a live tailer would have seen.
    ///
    /// # Errors
    ///
    /// I/O errors, or a malformed terminal event (with its line number).
    pub fn from_events_path(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut agg = Self::new();
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let Some(body) = line.strip_suffix('\n') else {
                break; // torn final line: still being written, skip it
            };
            agg.fold_line(body.strip_suffix('\r').unwrap_or(body))
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(agg)
    }
}

/// Records a non-negative magnitude into a [`Log2Histogram`], reusing
/// its µs-oriented buckets as generic log2 bins: value `v` lands in
/// bucket ⌊log2 v⌋; zero is underflow, `inf` is overflow — both remain
/// visible as explicit counts rather than being dropped.
fn record_magnitude(hist: &mut Log2Histogram, v: f64) {
    if v.is_infinite() || v >= u128::MAX as f64 {
        hist.record_micros(u128::MAX);
    } else if v.is_nan() {
        hist.record_micros(0);
    } else {
        hist.record_micros(v as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdc_sample(index: u64, site: &str, critical: bool) -> AnalyticSample {
        AnalyticSample {
            index,
            site: site.to_owned(),
            outcome: "SDC".to_owned(),
            mismatches: 4,
            class: SpatialClass::Square,
            mre: Some(12.5),
            critical,
            fclass: critical.then_some(SpatialClass::Line),
        }
    }

    fn masked_sample(index: u64) -> AnalyticSample {
        AnalyticSample {
            index,
            site: "l2".to_owned(),
            outcome: "MASKED".to_owned(),
            mismatches: 0,
            class: SpatialClass::None,
            mre: None,
            critical: false,
            fclass: None,
        }
    }

    #[test]
    fn folding_is_idempotent_per_index() {
        let mut agg = CriticalityAggregator::new();
        agg.fold_sample(&sdc_sample(3, "fpu", true));
        let once = agg.clone();
        agg.fold_sample(&sdc_sample(3, "fpu", true));
        assert_eq!(agg, once, "re-folding a seen index must be a no-op");
        assert_eq!(agg.sdc(), 1);
        assert_eq!(agg.critical_sdc(), 1);
    }

    #[test]
    fn counts_and_breakdowns_accumulate() {
        let mut agg = CriticalityAggregator::with_context("dgemm", "32x32", "K40", 4, 100.0);
        agg.fold_sample(&sdc_sample(0, "fpu", true));
        agg.fold_sample(&sdc_sample(1, "l2", false));
        agg.fold_sample(&masked_sample(2));
        agg.fold_sample(&AnalyticSample {
            outcome: "CRASH".to_owned(),
            ..masked_sample(3)
        });
        assert_eq!(agg.injections(), 4);
        assert_eq!(agg.sdc(), 2);
        assert_eq!(agg.critical_sdc(), 1);
        assert_eq!(agg.masked(), 1);
        assert_eq!(agg.crash(), 1);
        // 2 SDCs out of 4 injections at σ=100 → FIT_all total 50.
        assert!((agg.fit_all().total().value() - 50.0).abs() < 1e-12);
        // Filtered breakdown follows the *filtered* class.
        assert!((agg.fit_filtered().rate(SpatialClass::Line).value() - 25.0).abs() < 1e-12);
        assert_eq!(agg.sdc_by_site()["fpu"], 1);
        let (lo, hi) = agg.fit_all_ci95();
        assert!(lo < agg.fit_all().total().value());
        assert!(hi > agg.fit_all().total().value());
        assert!(agg.fit_ci_width() > 0.0);
        assert_eq!(agg.corrupted_elements_histogram().count(), 2);
        assert_eq!(agg.mre_filtered_histogram().count(), 1);
    }

    #[test]
    fn provenance_and_replay_events_fold_alike() {
        let rec = ProvenanceRecord {
            index: 7,
            site: "fpu".to_owned(),
            at_tile: Some(2),
            victim_tile: None,
            unit: None,
            bit: Some(5),
            delivered: true,
            touched_tiles: vec![2],
            outcome: "SDC".to_owned(),
            mismatches: 3,
            class: SpatialClass::Line,
            mre: Some(7.0),
            critical: true,
            fclass: Some(SpatialClass::Single),
        };
        let mut from_prov = CriticalityAggregator::new();
        from_prov.fold_event(&rec.to_event()).unwrap();

        // A replay marker carrying the same analytic fields.
        let replay = Event {
            kind: "replay".to_owned(),
            index: Some(7),
            fields: vec![
                ("site".to_owned(), FieldValue::Str("fpu".to_owned())),
                ("outcome".to_owned(), FieldValue::Str("SDC".to_owned())),
                ("delivered".to_owned(), FieldValue::Bool(true)),
                ("mismatches".to_owned(), FieldValue::U64(3)),
                ("class".to_owned(), FieldValue::Str("line".to_owned())),
                ("mre".to_owned(), FieldValue::F64(7.0)),
                ("critical".to_owned(), FieldValue::Bool(true)),
                ("fclass".to_owned(), FieldValue::Str("single".to_owned())),
            ],
        };
        let mut from_replay = CriticalityAggregator::new();
        from_replay.fold_event(&replay).unwrap();
        assert_eq!(from_prov, from_replay);
    }

    #[test]
    fn run_begin_sets_context_and_run_end_finishes() {
        let mut agg = CriticalityAggregator::new();
        agg.fold_line(
            r#"{"e":"run_begin","device":"K40","injections":8,"seed":11,"kernel":"dgemm","input":"32x32","sigma":2048.5}"#,
        )
        .unwrap();
        assert_eq!(agg.kernel(), "dgemm");
        assert_eq!(agg.input(), "32x32");
        assert_eq!(agg.device(), "K40");
        assert_eq!(agg.declared_injections(), 8);
        assert!((agg.sigma_total() - 2048.5).abs() < 1e-12);
        assert!(!agg.is_finished());
        agg.fold_line(r#"{"e":"run_end","produced":8,"masked":5,"sdc":2,"crash":1,"hang":0}"#)
            .unwrap();
        assert!(agg.is_finished());
        // Torn tail lines are ignored, not errors.
        agg.fold_line("{\"e\":\"prov").unwrap();
    }

    #[test]
    fn merge_adds_counts_and_drops_scatter() {
        let mut a = CriticalityAggregator::with_context("dgemm", "32x32", "K40", 2, 10.0);
        a.fold_sample(&sdc_sample(0, "fpu", true));
        let mut b = CriticalityAggregator::with_context("hotspot", "64x64", "K40", 2, 10.0);
        b.fold_sample(&sdc_sample(0, "l2", false));
        let mut total = CriticalityAggregator::new();
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.sdc(), 2);
        assert_eq!(total.critical_sdc(), 1);
        assert_eq!(total.kernel(), "mixed");
        assert_eq!(total.device(), "K40");
        assert_eq!(total.scatter().count(), 0, "rollup carries no scatter");
        assert_eq!(total.sdc_by_site()["fpu"] + total.sdc_by_site()["l2"], 2);
    }

    #[test]
    fn json_rendering_is_parseable_and_deterministic() {
        let mut agg = CriticalityAggregator::with_context("dgemm", "32x32", "K40", 4, 64.0);
        agg.fold_sample(&sdc_sample(0, "fpu", true));
        agg.fold_sample(&masked_sample(1));
        let line = agg.to_json();
        assert_eq!(line, agg.clone().to_json());
        let parsed = crate::json::parse_line(&line).unwrap();
        let top = crate::json::as_obj(&parsed).unwrap();
        assert_eq!(crate::json::get_usize(top, "radcrit_analytics"), Ok(1));
        assert_eq!(crate::json::get_str(top, "kernel"), Ok("dgemm"));
        assert_eq!(crate::json::get_usize(top, "sdc"), Ok(1));
        assert_eq!(crate::json::get_usize(top, "critical_sdc"), Ok(1));
    }
}
